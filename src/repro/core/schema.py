"""Activity schemas and their variables (Section 3, Figure 3).

An application model developed with the CMM is a set of resource, activity
state, and process schemas that are instantiated during application
execution.  Per Figure 3:

* a **basic activity schema** contains an activity state variable plus
  input/output and helper resource variables — it models a unit of work
  performed by one participant;
* a **process activity schema** contains an activity state variable,
  *activity variables* (the subactivities), resource variables (input and
  output, role and local data variables), and *dependency variables* that
  define the coordination rules between subactivities.

All parts of a process schema are typed: activity variables are typed by
activity schemas, resource variables by resource schemas, the state variable
by an activity state schema, and dependency variables by the fixed
dependency type set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import DependencyError, SchemaError
from .context import ContextSchema
from .metamodel import DependencyType, MetaType
from .resources import ResourceSchema, ResourceUsage
from .roles import RoleRef
from .states import ActivityStateSchema, generic_activity_state_schema


@dataclass(frozen=True)
class ResourceVariable:
    """A typed slot for a resource in an activity schema."""

    name: str
    schema: ResourceSchema
    usage: ResourceUsage


@dataclass(frozen=True)
class ActivityVariable:
    """A typed slot for a subactivity of a process schema.

    ``optional`` marks subactivities that may never be instantiated in a
    given run — Figure 1 shows several optional activities (extra lab
    tests, local expertise) whose execution depends on run-time decisions.
    ``performer`` names the role responsible for the activity, resolved at
    run time by the coordination engine.
    """

    name: str
    activity_schema: "ActivitySchema"
    optional: bool = False
    performer: Optional[RoleRef] = None


# A guard condition evaluated against the enclosing process instance.  The
# coordination engine passes the live ProcessInstance; the callable returns
# True when the dependency may fire.
Condition = Callable[["Any"], bool]


@dataclass(frozen=True)
class DependencyVariable:
    """A coordination rule between subactivities of one process schema.

    * ``SEQUENCE`` — single source, single target: target becomes ready when
      the source completes.
    * ``CONDITION`` — like SEQUENCE but guarded by ``condition``.
    * ``SYNC_AND`` — target becomes ready when *all* sources completed.
    * ``SYNC_OR`` — target becomes ready when *any* source completed.

    Sources/targets name activity variables of the owning process schema.
    """

    name: str
    dependency_type: DependencyType
    sources: Tuple[str, ...]
    target: str
    condition: Optional[Condition] = None

    def __post_init__(self) -> None:
        if not self.sources:
            raise DependencyError(f"dependency {self.name!r} has no sources")
        if self.dependency_type in (
            DependencyType.SEQUENCE,
            DependencyType.CONDITION,
        ) and len(self.sources) != 1:
            raise DependencyError(
                f"{self.dependency_type} dependency {self.name!r} requires "
                f"exactly one source, got {len(self.sources)}"
            )
        if (
            self.dependency_type is DependencyType.CONDITION
            and self.condition is None
        ):
            raise DependencyError(
                f"CONDITION dependency {self.name!r} requires a condition"
            )


class ActivitySchema:
    """Common base of basic and process activity schemas."""

    meta_type: MetaType = MetaType.BASIC_ACTIVITY

    def __init__(
        self,
        schema_id: str,
        name: str,
        state_schema: Optional[ActivityStateSchema] = None,
    ) -> None:
        self.schema_id = schema_id
        self.name = name
        #: The activity state variable: every activity schema has exactly one.
        self.state_schema = state_schema or generic_activity_state_schema()
        self._resource_variables: Dict[str, ResourceVariable] = {}

    # -- resource variables ---------------------------------------------------

    def add_resource_variable(self, variable: ResourceVariable) -> ResourceVariable:
        if variable.name in self._resource_variables:
            raise SchemaError(
                f"duplicate resource variable {variable.name!r} in "
                f"schema {self.name!r}"
            )
        self._check_usage(variable)
        self._resource_variables[variable.name] = variable
        return variable

    def resource_variables(self) -> Tuple[ResourceVariable, ...]:
        return tuple(self._resource_variables.values())

    def resource_variable(self, name: str) -> ResourceVariable:
        try:
            return self._resource_variables[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no resource variable {name!r}"
            ) from None

    def _check_usage(self, variable: ResourceVariable) -> None:
        raise NotImplementedError

    @property
    def is_process(self) -> bool:
        return isinstance(self, ProcessActivitySchema)

    def validate(self) -> None:
        self.state_schema.validate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, id={self.schema_id!r})"


class BasicActivitySchema(ActivitySchema):
    """A unit of work: state variable + input/output/helper resources.

    Per Figure 3(a), basic activity schemas are restricted to input and
    output plus helper resource variables.  ``performer`` names the role
    whose members may claim the activity via their worklists.
    """

    meta_type = MetaType.BASIC_ACTIVITY

    _ALLOWED = (ResourceUsage.INPUT, ResourceUsage.OUTPUT, ResourceUsage.HELPER)

    def __init__(
        self,
        schema_id: str,
        name: str,
        state_schema: Optional[ActivityStateSchema] = None,
        performer: Optional[RoleRef] = None,
    ) -> None:
        super().__init__(schema_id, name, state_schema)
        self.performer = performer

    def _check_usage(self, variable: ResourceVariable) -> None:
        if variable.usage not in self._ALLOWED:
            raise SchemaError(
                f"basic activity schema {self.name!r} allows only "
                f"input/output/helper resource variables, got {variable.usage}"
            )


class ProcessActivitySchema(ActivitySchema):
    """A process: subactivities plus coordination rules.

    Per Figure 3(b), process schemas carry input and output, role, and local
    data resource variables; plus activity variables and dependency
    variables.  ``context_schemas`` declares the context resources this
    process creates when instantiated (the Section 5.4 task-force process
    creates ``TaskForceContext``).
    """

    meta_type = MetaType.PROCESS_ACTIVITY

    _ALLOWED = (
        ResourceUsage.INPUT,
        ResourceUsage.OUTPUT,
        ResourceUsage.ROLE,
        ResourceUsage.LOCAL,
    )

    def __init__(
        self,
        schema_id: str,
        name: str,
        state_schema: Optional[ActivityStateSchema] = None,
    ) -> None:
        super().__init__(schema_id, name, state_schema)
        self._activity_variables: Dict[str, ActivityVariable] = {}
        self._dependency_variables: Dict[str, DependencyVariable] = {}
        self._context_schemas: Dict[str, ContextSchema] = {}
        #: Activity variables started automatically when the process starts.
        self.entry_activities: List[str] = []

    # -- activity variables -----------------------------------------------------

    def add_activity_variable(self, variable: ActivityVariable) -> ActivityVariable:
        if variable.name in self._activity_variables:
            raise SchemaError(
                f"duplicate activity variable {variable.name!r} in "
                f"process schema {self.name!r}"
            )
        self._activity_variables[variable.name] = variable
        return variable

    def activity_variables(self) -> Tuple[ActivityVariable, ...]:
        return tuple(self._activity_variables.values())

    def activity_variable(self, name: str) -> ActivityVariable:
        try:
            return self._activity_variables[name]
        except KeyError:
            raise SchemaError(
                f"process schema {self.name!r} has no activity variable {name!r}"
            ) from None

    def has_activity_variable(self, name: str) -> bool:
        return name in self._activity_variables

    # -- dependency variables -----------------------------------------------------

    def add_dependency(self, dependency: DependencyVariable) -> DependencyVariable:
        if dependency.name in self._dependency_variables:
            raise SchemaError(
                f"duplicate dependency {dependency.name!r} in "
                f"process schema {self.name!r}"
            )
        for endpoint in (*dependency.sources, dependency.target):
            if endpoint not in self._activity_variables:
                raise DependencyError(
                    f"dependency {dependency.name!r} references unknown "
                    f"activity variable {endpoint!r}"
                )
        self._dependency_variables[dependency.name] = dependency
        return dependency

    def dependencies(self) -> Tuple[DependencyVariable, ...]:
        return tuple(self._dependency_variables.values())

    def dependencies_targeting(self, name: str) -> Tuple[DependencyVariable, ...]:
        return tuple(
            d for d in self._dependency_variables.values() if d.target == name
        )

    # -- contexts -------------------------------------------------------------------

    def add_context_schema(self, schema: ContextSchema) -> ContextSchema:
        if schema.name in self._context_schemas:
            raise SchemaError(
                f"duplicate context schema {schema.name!r} in "
                f"process schema {self.name!r}"
            )
        self._context_schemas[schema.name] = schema
        return schema

    def context_schemas(self) -> Tuple[ContextSchema, ...]:
        return tuple(self._context_schemas.values())

    # -- entry points ------------------------------------------------------------------

    def mark_entry(self, activity_variable_name: str) -> None:
        """Mark a subactivity as started automatically at process start."""
        self.activity_variable(activity_variable_name)
        if activity_variable_name not in self.entry_activities:
            self.entry_activities.append(activity_variable_name)

    # -- checks ------------------------------------------------------------------------

    def _check_usage(self, variable: ResourceVariable) -> None:
        if variable.usage not in self._ALLOWED:
            raise SchemaError(
                f"process schema {self.name!r} allows only input/output/"
                f"role/local resource variables, got {variable.usage}"
            )

    def validate(self) -> None:
        super().validate()
        if not self._activity_variables:
            raise SchemaError(
                f"process schema {self.name!r} declares no subactivities"
            )
        entry_or_targeted = set(self.entry_activities)
        entry_or_targeted.update(
            d.target for d in self._dependency_variables.values()
        )
        unreachable = [
            name
            for name, var in self._activity_variables.items()
            if name not in entry_or_targeted and not var.optional
        ]
        if unreachable:
            raise SchemaError(
                f"process schema {self.name!r} has non-optional subactivities "
                f"that are neither entry activities nor dependency targets: "
                f"{sorted(unreachable)}"
            )

    def count_activities(self, recursive: bool = True) -> int:
        """Number of activity variables, optionally counting nested processes.

        Used by the Section 7 demonstration bench to reproduce the ">50 CMM
        activities" statistic.
        """
        total = len(self._activity_variables)
        if recursive:
            for var in self._activity_variables.values():
                if isinstance(var.activity_schema, ProcessActivitySchema):
                    total += var.activity_schema.count_activities(recursive=True)
        return total
