"""Run-time activity and process instances.

Schemas (types) are instantiated during application execution: an
:class:`ActivityInstance` for basic activities, a :class:`ProcessInstance`
for processes.  Instances own a state machine over their schema's activity
state schema; every transition produces the activity state change record
that feeds the ``E_activity`` primitive event producer (Section 5.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import EnactmentError, SchemaError
from .context import ContextReference
from .resources import DataResource
from .roles import Participant
from .schema import ActivitySchema, ActivityVariable, ProcessActivitySchema
from .states import StateChange, StateMachine


@dataclass(frozen=True)
class ActivityStateChange:
    """The payload of an ``E_activity`` event, per Section 5.1.1.

    Parameter names follow the paper exactly: time, activityInstanceId,
    parentProcessSchemaId, parentProcessInstanceId, user,
    activityVariableId, activityProcessSchemaId, oldState, newState.
    Fields about the parent are ``None`` for top-level processes; the
    activityProcessSchemaId is ``None`` for basic activities.
    """

    time: int
    activity_instance_id: str
    parent_process_schema_id: Optional[str]
    parent_process_instance_id: Optional[str]
    user: Optional[str]
    activity_variable_id: Optional[str]
    activity_process_schema_id: Optional[str]
    old_state: str
    new_state: str


class ActivityInstance:
    """A running (basic) activity."""

    def __init__(
        self,
        instance_id: str,
        schema: ActivitySchema,
        parent: Optional["ProcessInstance"] = None,
        activity_variable: Optional[ActivityVariable] = None,
    ) -> None:
        if (parent is None) != (activity_variable is None):
            raise EnactmentError(
                "parent and activity_variable must be supplied together"
            )
        self.instance_id = instance_id
        self.schema = schema
        self.parent = parent
        self.activity_variable = activity_variable
        self.state_machine = StateMachine(schema.state_schema)
        #: The participant who claimed/performs the activity, if any.
        self.performer: Optional[Participant] = None
        #: Data resources bound to this instance, keyed by variable name.
        self.data: Dict[str, DataResource] = {}

    # -- identity helpers matching the E_activity parameters -------------------

    @property
    def parent_process_schema_id(self) -> Optional[str]:
        return self.parent.schema.schema_id if self.parent else None

    @property
    def parent_process_instance_id(self) -> Optional[str]:
        return self.parent.instance_id if self.parent else None

    @property
    def activity_variable_id(self) -> Optional[str]:
        return self.activity_variable.name if self.activity_variable else None

    @property
    def activity_process_schema_id(self) -> Optional[str]:
        if isinstance(self.schema, ProcessActivitySchema):
            return self.schema.schema_id
        return None

    @property
    def current_state(self) -> str:
        return self.state_machine.current_state

    def is_closed(self) -> bool:
        return self.state_machine.is_closed()

    # -- state changes ----------------------------------------------------------

    def change_state(
        self, new_state: str, time: int, user: Optional[str] = None
    ) -> ActivityStateChange:
        """Transition and return the ``E_activity`` payload record."""
        change: StateChange = self.state_machine.transition_to(
            new_state, time=time, user=user
        )
        return ActivityStateChange(
            time=change.time,
            activity_instance_id=self.instance_id,
            parent_process_schema_id=self.parent_process_schema_id,
            parent_process_instance_id=self.parent_process_instance_id,
            user=user,
            activity_variable_id=self.activity_variable_id,
            activity_process_schema_id=self.activity_process_schema_id,
            old_state=change.old_state,
            new_state=change.new_state,
        )

    # -- data binding ----------------------------------------------------------

    def bind_data(self, variable_name: str, resource: DataResource) -> None:
        self.schema.resource_variable(variable_name)  # raises if unknown
        self.data[variable_name] = resource

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.schema.name!r}, "
            f"id={self.instance_id!r}, state={self.current_state!r})"
        )


class ProcessInstance(ActivityInstance):
    """A running process: child instances, contexts, and dependency state."""

    def __init__(
        self,
        instance_id: str,
        schema: ProcessActivitySchema,
        parent: Optional["ProcessInstance"] = None,
        activity_variable: Optional[ActivityVariable] = None,
    ) -> None:
        if not isinstance(schema, ProcessActivitySchema):
            raise SchemaError(
                f"ProcessInstance requires a process schema, got {schema!r}"
            )
        super().__init__(instance_id, schema, parent, activity_variable)
        self.schema: ProcessActivitySchema = schema
        #: Child instances keyed by activity variable name.
        self.children: Dict[str, ActivityInstance] = {}
        #: Context references held by this process, keyed by context name.
        self.context_refs: Dict[str, ContextReference] = {}
        #: Arbitrary local process data (the "local data variables").
        self.locals: Dict[str, Any] = {}

    def add_child(self, variable_name: str, child: ActivityInstance) -> None:
        if variable_name in self.children:
            raise EnactmentError(
                f"activity variable {variable_name!r} of process "
                f"{self.instance_id!r} is already instantiated"
            )
        self.children[variable_name] = child

    def child(self, variable_name: str) -> ActivityInstance:
        try:
            return self.children[variable_name]
        except KeyError:
            raise EnactmentError(
                f"activity variable {variable_name!r} of process "
                f"{self.instance_id!r} has no instance"
            ) from None

    def has_child(self, variable_name: str) -> bool:
        return variable_name in self.children

    def hold_context(self, ref: ContextReference) -> None:
        self.context_refs[ref.context_name] = ref

    def context(self, name: str) -> ContextReference:
        try:
            return self.context_refs[name]
        except KeyError:
            raise EnactmentError(
                f"process {self.instance_id!r} holds no reference to "
                f"context {name!r}"
            ) from None

    def descendants(self) -> List[ActivityInstance]:
        """All transitive child instances, preorder."""
        result: List[ActivityInstance] = []
        for child in self.children.values():
            result.append(child)
            if isinstance(child, ProcessInstance):
                result.extend(child.descendants())
        return result
