"""Activity state schemas (Section 4, Figure 4).

Each activity schema contains an activity state variable associated with an
*activity state schema*, which enumerates the possible activity states for
instances of that activity schema and the allowed state transitions.  A
transition from one state to another constitutes a primitive *activity
event*; the CORE engine publishes these events and the Awareness Model
consumes them.

Two rules from the paper are enforced here:

* **Substate forests.**  Application-specific states may only be defined as
  substates of already-defined states, producing a forest whose roots are the
  generic states of Figure 4 (``Uninitialized``, ``Ready``, ``Running``,
  ``Suspended``, and ``Closed`` with its substates ``Completed`` and
  ``Terminated``).
* **Leaf-only transitions.**  State transitions must only connect leaves of
  the forest.  When a previously-leaf state is specialized into substates,
  its existing transitions are re-targeted onto a designated *default*
  substate (see :meth:`ActivityStateSchema.specialize`), keeping the schema
  valid while preserving the generic behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import InvalidTransitionError, StateError, UnknownStateError

# Generic state names, matching Figure 4 of the paper.
UNINITIALIZED = "Uninitialized"
READY = "Ready"
RUNNING = "Running"
SUSPENDED = "Suspended"
CLOSED = "Closed"
COMPLETED = "Completed"
TERMINATED = "Terminated"

GENERIC_STATES = (
    UNINITIALIZED,
    READY,
    RUNNING,
    SUSPENDED,
    CLOSED,
    COMPLETED,
    TERMINATED,
)


@dataclass(frozen=True)
class Transition:
    """A directed state transition between two (leaf) states."""

    source: str
    target: str

    def __str__(self) -> str:
        return f"{self.source} -> {self.target}"


@dataclass
class StateNode:
    """A node in the activity-state forest.

    ``parent is None`` marks a root (one of the generic states or an
    application-defined root in a fully custom schema).
    """

    name: str
    parent: Optional[str] = None
    children: List[str] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class ActivityStateSchema:
    """A forest of activity states plus a leaf-to-leaf transition relation.

    The schema is mutable during process specification (states and
    transitions are added) and is treated as immutable once instances run
    against it.  :meth:`validate` checks the paper's structural rules and is
    called by the CORE engine when a schema is registered.
    """

    def __init__(self, name: str, initial_state: Optional[str] = None) -> None:
        self.name = name
        self._nodes: Dict[str, StateNode] = {}
        self._transitions: Set[Transition] = set()
        self._outgoing: Dict[str, Set[str]] = {}
        self._initial: Optional[str] = initial_state

    # -- construction -------------------------------------------------------

    def add_state(self, name: str, parent: Optional[str] = None) -> StateNode:
        """Add a state; with *parent* set, the state becomes a substate.

        Adding a substate to a state that already participates in
        transitions is rejected (the schema would violate the leaf-only
        rule); use :meth:`specialize` for that case.
        """
        if name in self._nodes:
            raise StateError(f"duplicate state {name!r} in schema {self.name!r}")
        if parent is not None:
            parent_node = self._node(parent)
            if self._has_transitions(parent):
                raise StateError(
                    f"cannot add substate {name!r} under {parent!r}: "
                    f"{parent!r} participates in transitions; use specialize()"
                )
            parent_node.children.append(name)
        self._nodes[name] = StateNode(name=name, parent=parent)
        return self._nodes[name]

    def add_transition(self, source: str, target: str) -> Transition:
        """Add a leaf-to-leaf transition."""
        source_node = self._node(source)
        target_node = self._node(target)
        if not source_node.is_leaf or not target_node.is_leaf:
            raise StateError(
                f"transition {source} -> {target} must connect leaves of the forest"
            )
        if source == target:
            raise StateError(f"self-transition on {source!r} is not allowed")
        transition = Transition(source, target)
        self._transitions.add(transition)
        self._outgoing.setdefault(source, set()).add(target)
        return transition

    def specialize(
        self,
        state: str,
        substates: Iterable[str],
        default: Optional[str] = None,
    ) -> List[StateNode]:
        """Split *state* into application-specific *substates*.

        Existing transitions touching *state* are re-targeted onto the
        *default* substate (the first substate when not given), so the schema
        keeps satisfying the leaf-only transition rule.  Returns the new
        nodes.
        """
        node = self._node(state)
        names = list(substates)
        if not names:
            raise StateError(f"specialize({state!r}) requires at least one substate")
        for name in names:
            if name in self._nodes:
                raise StateError(f"duplicate state {name!r} in schema {self.name!r}")
        default_name = default if default is not None else names[0]
        if default_name not in names:
            raise StateError(
                f"default substate {default_name!r} is not among the new substates"
            )

        # Create the substate nodes first.
        created = []
        for name in names:
            node.children.append(name)
            self._nodes[name] = StateNode(name=name, parent=state)
            created.append(self._nodes[name])

        # The initial state must stay a leaf: specializing it moves the
        # designation onto the default substate.
        if self._initial == state:
            self._initial = default_name

        # Re-target transitions that touched the (formerly leaf) state.
        touched = [t for t in self._transitions if state in (t.source, t.target)]
        for old in touched:
            self._transitions.discard(old)
            self._outgoing.get(old.source, set()).discard(old.target)
            new_source = default_name if old.source == state else old.source
            new_target = default_name if old.target == state else old.target
            replacement = Transition(new_source, new_target)
            self._transitions.add(replacement)
            self._outgoing.setdefault(new_source, set()).add(new_target)
        return created

    def set_initial(self, state: str) -> None:
        """Designate the initial state for new instances (must be a leaf)."""
        node = self._node(state)
        if not node.is_leaf:
            raise StateError(f"initial state {state!r} must be a leaf")
        self._initial = state

    # -- inspection ---------------------------------------------------------

    @property
    def initial_state(self) -> str:
        if self._initial is None:
            raise StateError(f"schema {self.name!r} has no initial state")
        return self._initial

    def states(self) -> Tuple[str, ...]:
        """All state names in definition order."""
        return tuple(self._nodes)

    def roots(self) -> Tuple[str, ...]:
        return tuple(n.name for n in self._nodes.values() if n.parent is None)

    def leaves(self) -> Tuple[str, ...]:
        return tuple(n.name for n in self._nodes.values() if n.is_leaf)

    def transitions(self) -> FrozenSet[Transition]:
        return frozenset(self._transitions)

    def has_state(self, name: str) -> bool:
        return name in self._nodes

    def parent_of(self, name: str) -> Optional[str]:
        return self._node(name).parent

    def children_of(self, name: str) -> Tuple[str, ...]:
        return tuple(self._node(name).children)

    def ancestors(self, name: str) -> Tuple[str, ...]:
        """The chain of ancestors of *name*, nearest first (excludes *name*)."""
        chain = []
        parent = self._node(name).parent
        while parent is not None:
            chain.append(parent)
            parent = self._nodes[parent].parent
        return tuple(chain)

    def root_of(self, name: str) -> str:
        """The generic (root) state that *name* specializes."""
        ancestors = self.ancestors(name)
        return ancestors[-1] if ancestors else name

    def is_substate_of(self, name: str, ancestor: str) -> bool:
        """True when *name* equals *ancestor* or lies below it in the forest."""
        self._node(ancestor)
        return name == ancestor or ancestor in self.ancestors(name)

    def can_transition(self, source: str, target: str) -> bool:
        self._node(source)
        self._node(target)
        return target in self._outgoing.get(source, ())

    def successors(self, source: str) -> Tuple[str, ...]:
        self._node(source)
        return tuple(sorted(self._outgoing.get(source, ())))

    def terminal_states(self) -> Tuple[str, ...]:
        """Leaves without outgoing transitions (e.g. Completed, Terminated)."""
        return tuple(
            name
            for name in self.leaves()
            if not self._outgoing.get(name)
        )

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Check the paper's structural rules; raise :class:`StateError`."""
        if not self._nodes:
            raise StateError(f"schema {self.name!r} has no states")
        if self._initial is None:
            raise StateError(f"schema {self.name!r} has no initial state")
        if not self._node(self._initial).is_leaf:
            raise StateError(
                f"initial state {self._initial!r} of {self.name!r} is not a leaf"
            )
        for transition in self._transitions:
            for endpoint in (transition.source, transition.target):
                if not self._node(endpoint).is_leaf:
                    raise StateError(
                        f"transition {transition} in {self.name!r} touches "
                        f"non-leaf state {endpoint!r}"
                    )
        # Parent links and child links must agree (guards manual mutation).
        for node in self._nodes.values():
            for child in node.children:
                if self._node(child).parent != node.name:
                    raise StateError(
                        f"inconsistent forest around {node.name!r}/{child!r}"
                    )

    # -- helpers ------------------------------------------------------------

    def _node(self, name: str) -> StateNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownStateError(
                f"unknown state {name!r} in schema {self.name!r}"
            ) from None

    def _has_transitions(self, name: str) -> bool:
        return any(name in (t.source, t.target) for t in self._transitions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ActivityStateSchema({self.name!r}, states={len(self._nodes)}, "
            f"transitions={len(self._transitions)})"
        )


def generic_activity_state_schema(name: str = "generic") -> ActivityStateSchema:
    """Build the generic activity state schema of Figure 4.

    ``Closed`` is a non-leaf with substates ``Completed`` and ``Terminated``;
    all transitions connect leaves, consistent with the WfMC-derived diagram:

    * ``Uninitialized -> Ready``
    * ``Ready -> Running``, ``Ready -> Terminated``
    * ``Running -> Suspended``, ``Suspended -> Running``
    * ``Running -> Completed``, ``Running -> Terminated``
    * ``Suspended -> Terminated``
    """
    schema = ActivityStateSchema(name)
    schema.add_state(UNINITIALIZED)
    schema.add_state(READY)
    schema.add_state(RUNNING)
    schema.add_state(SUSPENDED)
    schema.add_state(CLOSED)
    schema.add_state(COMPLETED, parent=CLOSED)
    schema.add_state(TERMINATED, parent=CLOSED)
    schema.add_transition(UNINITIALIZED, READY)
    schema.add_transition(READY, RUNNING)
    schema.add_transition(READY, TERMINATED)
    schema.add_transition(RUNNING, SUSPENDED)
    schema.add_transition(SUSPENDED, RUNNING)
    schema.add_transition(RUNNING, COMPLETED)
    schema.add_transition(RUNNING, TERMINATED)
    schema.add_transition(SUSPENDED, TERMINATED)
    schema.set_initial(UNINITIALIZED)
    schema.validate()
    return schema


@dataclass(frozen=True)
class StateChange:
    """One recorded transition of a state machine (old -> new at a time)."""

    time: int
    old_state: str
    new_state: str
    user: Optional[str] = None


class StateMachine:
    """The run-time side of an activity state schema.

    One state machine lives inside each activity instance.  It enforces that
    every transition is declared in the schema and records a timestamped
    history, which the monitoring tool and Figure 1 timeline rendering use.
    """

    def __init__(self, schema: ActivityStateSchema) -> None:
        schema.validate()
        self._schema = schema
        self._current = schema.initial_state
        self._history: List[StateChange] = []

    @property
    def schema(self) -> ActivityStateSchema:
        return self._schema

    @property
    def current_state(self) -> str:
        return self._current

    @property
    def history(self) -> Tuple[StateChange, ...]:
        return tuple(self._history)

    def is_in(self, state: str) -> bool:
        """True when the current leaf state equals or specializes *state*."""
        return self._schema.is_substate_of(self._current, state)

    def is_closed(self) -> bool:
        """True when the machine reached a terminal leaf (no way out)."""
        return not self._schema.successors(self._current)

    def transition_to(
        self, new_state: str, time: int, user: Optional[str] = None
    ) -> StateChange:
        """Move to *new_state*; raises unless the schema allows it."""
        if not self._schema.has_state(new_state):
            raise UnknownStateError(
                f"unknown state {new_state!r} in schema {self._schema.name!r}"
            )
        if not self._schema.can_transition(self._current, new_state):
            raise InvalidTransitionError(
                f"transition {self._current} -> {new_state} is not allowed "
                f"by schema {self._schema.name!r}"
            )
        change = StateChange(
            time=time, old_state=self._current, new_state=new_state, user=user
        )
        self._current = new_state
        self._history.append(change)
        return change

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateMachine(schema={self._schema.name!r}, state={self._current!r})"
