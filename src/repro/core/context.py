"""Context resources and context references (Section 4, Section 5.1.1).

A *context resource* is a collection of named resources organised into
name-value pairs called *fields* — similar to a record structure.  Contexts
are the CORE's novel scoping mechanism:

* Contexts can be **accessed only via context references**
  (:class:`ContextReference`); holding a reference is what puts an activity
  instance "in scope".  The engine hands references to the process instances
  a context is associated with, and a parent process may pass its reference
  down to subprocesses (the Section 5.4 example passes ``TaskForceContext``
  to the information-request subprocess).
* A context may therefore be **associated with several process instances**;
  the association set ``{(processSchemaId, processInstanceId)}`` is carried
  on every context field change event.
* **Scoped roles** live inside contexts as role-valued fields
  (see :mod:`repro.core.roles`); destroying the context destroys the roles.

Every field modification produces a *context field change event* with the
exact parameters of Section 5.1.1: time, contextId, the process association
set, fieldName, oldFieldValue and newFieldValue.  The CORE engine forwards
these change records to the awareness event source agents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

from ..errors import ContextError, ScopeError, UnknownFieldError


@dataclass(frozen=True)
class ContextFieldSpec:
    """Declaration of one context field: a name plus a value-type tag.

    ``field_type`` is one of ``"int"``, ``"str"``, ``"float"``, ``"bool"``,
    ``"role"`` (a scoped role), or ``"any"``.
    """

    name: str
    field_type: str = "any"

    _SIMPLE: Tuple[Tuple[str, type], ...] = (
        ("int", int),
        ("str", str),
        ("float", float),
        ("bool", bool),
    )

    def check(self, value: Any) -> None:
        if self.field_type in ("any", "role"):
            return
        expected = dict(self._SIMPLE).get(self.field_type)
        if expected is None:
            raise ContextError(
                f"field {self.name!r} declares unknown type {self.field_type!r}"
            )
        if expected is int and isinstance(value, bool):
            raise ContextError(f"field {self.name!r} expects int, got bool")
        if not isinstance(value, expected):
            raise ContextError(
                f"field {self.name!r} expects {self.field_type}, got "
                f"{type(value).__name__} {value!r}"
            )


class ContextSchema:
    """An application-specific context type: a set of field declarations."""

    def __init__(self, name: str, fields: Optional[List[ContextFieldSpec]] = None):
        self.name = name
        self._fields: Dict[str, ContextFieldSpec] = {}
        for spec in fields or []:
            self.declare_field(spec)

    def declare_field(self, spec: ContextFieldSpec) -> None:
        if spec.name in self._fields:
            raise ContextError(
                f"duplicate field {spec.name!r} in context schema {self.name!r}"
            )
        self._fields[spec.name] = spec

    def field_spec(self, name: str) -> ContextFieldSpec:
        try:
            return self._fields[name]
        except KeyError:
            raise UnknownFieldError(
                f"context schema {self.name!r} has no field {name!r}"
            ) from None

    def field_names(self) -> Tuple[str, ...]:
        return tuple(self._fields)

    def has_field(self, name: str) -> bool:
        return name in self._fields


@dataclass(frozen=True)
class ContextChange:
    """Record of one field modification — the payload of ``E_context``.

    ``associations`` is the set of ``(processSchemaId, processInstanceId)``
    tuples of the processes associated with the context at the time of the
    change, exactly as required by the event parameters of Section 5.1.1.
    """

    time: int
    context_id: str
    context_name: str
    associations: FrozenSet[Tuple[str, str]]
    field_name: str
    old_value: Any
    new_value: Any


ChangeListener = Callable[[ContextChange], None]


class ContextResource:
    """A run-time context instance.

    Direct mutation methods are underscore-private: clients must go through
    a :class:`ContextReference`, which is how the scope rule is enforced.
    The engine (or tests) may register change listeners; the awareness
    event source agent is one such listener.
    """

    def __init__(self, context_id: str, schema: ContextSchema) -> None:
        self.context_id = context_id
        self.schema = schema
        self._fields: Dict[str, Any] = {}
        self._associations: Set[Tuple[str, str]] = set()
        self._listeners: List[ChangeListener] = []
        self._destroyed = False

    # -- association & lifecycle -------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def destroyed(self) -> bool:
        return self._destroyed

    def associations(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset(self._associations)

    def _associate(self, process_schema_id: str, process_instance_id: str) -> None:
        self._check_alive()
        self._associations.add((process_schema_id, process_instance_id))

    def _dissociate(self, process_schema_id: str, process_instance_id: str) -> None:
        self._associations.discard((process_schema_id, process_instance_id))

    def _destroy(self) -> None:
        """Mark the context destroyed; scoped roles inside it disappear."""
        self._destroyed = True

    def add_listener(self, listener: ChangeListener) -> None:
        self._listeners.append(listener)

    # -- field access (package-private; called via ContextReference) --------

    def _get(self, field_name: str) -> Any:
        self._check_alive()
        self.schema.field_spec(field_name)
        if field_name not in self._fields:
            raise UnknownFieldError(
                f"field {field_name!r} of context {self.name!r} is unset"
            )
        return self._fields[field_name]

    def _is_set(self, field_name: str) -> bool:
        self.schema.field_spec(field_name)
        return field_name in self._fields

    def _set(self, field_name: str, value: Any, time: int) -> ContextChange:
        self._check_alive()
        spec = self.schema.field_spec(field_name)
        spec.check(value)
        old = self._fields.get(field_name)
        self._fields[field_name] = value
        change = ContextChange(
            time=time,
            context_id=self.context_id,
            context_name=self.name,
            associations=frozenset(self._associations),
            field_name=field_name,
            old_value=old,
            new_value=value,
        )
        for listener in list(self._listeners):
            listener(change)
        return change

    def _check_alive(self) -> None:
        if self._destroyed:
            raise ContextError(
                f"context {self.name!r} ({self.context_id}) has been destroyed"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ContextResource({self.name!r}, id={self.context_id!r})"


class ContextReference:
    """A capability handle over a context resource.

    All reads and writes flow through references, which lets the engine
    associate a *scope* with any context resource: only holders of a
    reference can touch the context.  References know which process
    instance they were issued to, and writes are stamped with the engine
    clock by the issuing engine.
    """

    def __init__(
        self,
        context: ContextResource,
        holder_process_instance_id: Optional[str],
        clock_now: Callable[[], int],
    ) -> None:
        self._context = context
        self.holder_process_instance_id = holder_process_instance_id
        self._clock_now = clock_now
        self._revoked = False

    @property
    def context_id(self) -> str:
        return self._context.context_id

    @property
    def context_name(self) -> str:
        return self._context.name

    def get(self, field_name: str) -> Any:
        self._check()
        return self._context._get(field_name)

    def is_set(self, field_name: str) -> bool:
        self._check()
        return self._context._is_set(field_name)

    def set(self, field_name: str, value: Any) -> ContextChange:
        self._check()
        return self._context._set(field_name, value, self._clock_now())

    def update(self, fields: Dict[str, Any]) -> List[ContextChange]:
        """Set several fields in one call; one change record per field.

        All writes share the scope check and are stamped in mapping order;
        the returned records can be handed to
        ``ContextSourceAgent.gather_batch`` for batched event publication.
        """
        self._check()
        return [
            self._context._set(name, value, self._clock_now())
            for name, value in fields.items()
        ]

    def pass_to(self, process_instance_id: str) -> "ContextReference":
        """Hand a reference to a subprocess (Section 5.4 passes the task
        force context to the information-request subprocess this way)."""
        self._check()
        return ContextReference(self._context, process_instance_id, self._clock_now)

    def revoke(self) -> None:
        """Invalidate this handle; later access raises :class:`ScopeError`."""
        self._revoked = True

    def _check(self) -> None:
        if self._revoked:
            raise ScopeError(
                f"reference to context {self._context.name!r} was revoked"
            )

    # Engine-internal accessor (the delivery agent resolves scoped roles).
    @property
    def _resource(self) -> ContextResource:
        return self._context

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContextReference({self._context.name!r}, "
            f"holder={self.holder_process_instance_id!r})"
        )
