"""Process definition interchange (WfMC Interface 1 in spirit).

The paper grounds CMM's activity and resource variables in the WfMC
reference model and cites the WfMC *Process Definition Interchange*
standard; a usable release of CMI therefore needs build-time artifacts
that can be stored and exchanged.  This module serializes activity
schemas — including state schemas with application-specific substate
forests, resource variables, context schemas, dependencies, and nested
process schemas — to plain JSON-able dictionaries and back.

Two non-obvious rules:

* **Shared subschemas stay shared.**  A process definition may reference
  the same activity schema from several activity variables (the task-force
  pool does); the serializer emits each schema once under ``schemas`` and
  references it by id, and the loader rebuilds the object graph with the
  same sharing.
* **Conditions are named, not pickled.**  ``CONDITION`` dependencies carry
  a callable; callables do not survive interchange.  Conditions must be
  registered by name in a :class:`ConditionRegistry` on both sides;
  serializing an unregistered condition is an error rather than a silent
  drop.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import SchemaError
from .context import ContextFieldSpec, ContextSchema
from .metamodel import DependencyType
from .resources import ResourceSchema, ResourceKind, ResourceUsage
from .roles import RoleRef
from .schema import (
    ActivitySchema,
    ActivityVariable,
    BasicActivitySchema,
    DependencyVariable,
    ProcessActivitySchema,
    ResourceVariable,
)
from .states import ActivityStateSchema, generic_activity_state_schema

FORMAT_VERSION = 1


class ConditionRegistry:
    """Named guard conditions for CONDITION dependencies."""

    def __init__(self) -> None:
        self._conditions: Dict[str, Callable] = {}
        self._names: Dict[int, str] = {}

    def register(self, name: str, condition: Callable) -> Callable:
        if name in self._conditions:
            raise SchemaError(f"condition {name!r} is already registered")
        self._conditions[name] = condition
        self._names[id(condition)] = name
        return condition

    def lookup(self, name: str) -> Callable:
        try:
            return self._conditions[name]
        except KeyError:
            raise SchemaError(f"unknown condition {name!r}") from None

    def name_of(self, condition: Callable) -> str:
        name = self._names.get(id(condition))
        if name is None:
            raise SchemaError(
                "CONDITION dependency guard is not registered; register it "
                "by name in the ConditionRegistry before serializing"
            )
        return name


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------


def _state_schema_to_dict(schema: ActivityStateSchema) -> Dict[str, Any]:
    return {
        "name": schema.name,
        "initial": schema.initial_state,
        "states": [
            {"name": name, "parent": schema.parent_of(name)}
            for name in schema.states()
        ],
        "transitions": [
            {"source": t.source, "target": t.target}
            for t in sorted(schema.transitions(), key=str)
        ],
    }


def _role_ref_to_dict(ref: Optional[RoleRef]) -> Optional[Dict[str, Any]]:
    if ref is None:
        return None
    return {"role": ref.role_name, "context": ref.context_name}


def _resource_variable_to_dict(variable: ResourceVariable) -> Dict[str, Any]:
    return {
        "name": variable.name,
        "usage": variable.usage.name,
        "schema": {
            "name": variable.schema.name,
            "kind": variable.schema.kind.name,
            "value_type": variable.schema.value_type,
        },
    }


def _context_schema_to_dict(schema: ContextSchema) -> Dict[str, Any]:
    return {
        "name": schema.name,
        "fields": [
            {
                "name": schema.field_spec(name).name,
                "type": schema.field_spec(name).field_type,
            }
            for name in schema.field_names()
        ],
    }


def _schema_body(
    schema: ActivitySchema, conditions: Optional[ConditionRegistry]
) -> Dict[str, Any]:
    body: Dict[str, Any] = {
        "schema_id": schema.schema_id,
        "name": schema.name,
        "kind": "process" if schema.is_process else "basic",
        "state_schema": _state_schema_to_dict(schema.state_schema),
        "resource_variables": [
            _resource_variable_to_dict(v) for v in schema.resource_variables()
        ],
    }
    if isinstance(schema, BasicActivitySchema):
        body["performer"] = _role_ref_to_dict(schema.performer)
        return body
    assert isinstance(schema, ProcessActivitySchema)
    body["activity_variables"] = [
        {
            "name": variable.name,
            "schema_ref": variable.activity_schema.schema_id,
            "optional": variable.optional,
            "performer": _role_ref_to_dict(variable.performer),
        }
        for variable in schema.activity_variables()
    ]
    dependencies = []
    for dependency in schema.dependencies():
        entry: Dict[str, Any] = {
            "name": dependency.name,
            "type": dependency.dependency_type.name,
            "sources": list(dependency.sources),
            "target": dependency.target,
        }
        if dependency.dependency_type is DependencyType.CONDITION:
            if conditions is None:
                raise SchemaError(
                    f"dependency {dependency.name!r} has a condition; pass a "
                    f"ConditionRegistry to serialize it"
                )
            entry["condition"] = conditions.name_of(dependency.condition)
        dependencies.append(entry)
    body["dependencies"] = dependencies
    body["context_schemas"] = [
        _context_schema_to_dict(c) for c in schema.context_schemas()
    ]
    body["entry_activities"] = list(schema.entry_activities)
    return body


def schema_to_dict(
    schema: ActivitySchema,
    conditions: Optional[ConditionRegistry] = None,
) -> Dict[str, Any]:
    """Serialize *schema* (and every reachable subschema) to a dict."""
    collected: Dict[str, ActivitySchema] = {}

    def collect(node: ActivitySchema) -> None:
        if node.schema_id in collected:
            if collected[node.schema_id] is not node:
                raise SchemaError(
                    f"two different schemas share id {node.schema_id!r}"
                )
            return
        collected[node.schema_id] = node
        if isinstance(node, ProcessActivitySchema):
            for variable in node.activity_variables():
                collect(variable.activity_schema)

    collect(schema)
    return {
        "format_version": FORMAT_VERSION,
        "root": schema.schema_id,
        "schemas": [
            _schema_body(node, conditions) for node in collected.values()
        ],
    }


def schema_to_json(
    schema: ActivitySchema,
    conditions: Optional[ConditionRegistry] = None,
    indent: int = 2,
) -> str:
    """Serialize to a JSON string (the interchange wire format)."""
    return json.dumps(schema_to_dict(schema, conditions), indent=indent)


# ---------------------------------------------------------------------------
# Import
# ---------------------------------------------------------------------------


def _state_schema_from_dict(data: Dict[str, Any]) -> ActivityStateSchema:
    schema = ActivityStateSchema(data["name"])
    # Parents must exist before children: emit roots first, then BFS-ish.
    pending = list(data["states"])
    emitted = set()
    while pending:
        progressed = False
        remaining = []
        for node in pending:
            parent = node["parent"]
            if parent is None or parent in emitted:
                schema.add_state(node["name"], parent=parent)
                emitted.add(node["name"])
                progressed = True
            else:
                remaining.append(node)
        if not progressed:
            raise SchemaError(
                f"state schema {data['name']!r} has orphaned substates: "
                f"{[n['name'] for n in remaining]}"
            )
        pending = remaining
    for transition in data["transitions"]:
        schema.add_transition(transition["source"], transition["target"])
    schema.set_initial(data["initial"])
    schema.validate()
    return schema


def _role_ref_from_dict(data: Optional[Dict[str, Any]]) -> Optional[RoleRef]:
    if data is None:
        return None
    return RoleRef(data["role"], data["context"])


def _resource_variable_from_dict(data: Dict[str, Any]) -> ResourceVariable:
    schema_data = data["schema"]
    return ResourceVariable(
        name=data["name"],
        schema=ResourceSchema(
            name=schema_data["name"],
            kind=ResourceKind[schema_data["kind"]],
            value_type=schema_data["value_type"],
        ),
        usage=ResourceUsage[data["usage"]],
    )


def _context_schema_from_dict(data: Dict[str, Any]) -> ContextSchema:
    return ContextSchema(
        data["name"],
        [
            ContextFieldSpec(field["name"], field["type"])
            for field in data["fields"]
        ],
    )


def schema_from_dict(
    data: Dict[str, Any],
    conditions: Optional[ConditionRegistry] = None,
    resolver: Optional[Callable[[str], Optional[ActivitySchema]]] = None,
) -> ActivitySchema:
    """Rebuild the schema object graph; returns the root schema.

    *resolver* lets the caller supply already-materialized schemas by id
    (e.g. an engine's registry during journal recovery), so two payloads
    that share a subschema resolve to one object instead of conflicting.
    """
    if data.get("format_version") != FORMAT_VERSION:
        raise SchemaError(
            f"unsupported interchange format version "
            f"{data.get('format_version')!r} (expected {FORMAT_VERSION})"
        )
    bodies = {body["schema_id"]: body for body in data["schemas"]}
    if data["root"] not in bodies:
        raise SchemaError(f"root schema {data['root']!r} missing from payload")
    built: Dict[str, ActivitySchema] = {}

    def build(schema_id: str) -> ActivitySchema:
        if schema_id in built:
            return built[schema_id]
        if resolver is not None:
            existing = resolver(schema_id)
            if existing is not None:
                built[schema_id] = existing
                return existing
        try:
            body = bodies[schema_id]
        except KeyError:
            raise SchemaError(
                f"schema {schema_id!r} referenced but not in payload"
            ) from None
        state_schema = _state_schema_from_dict(body["state_schema"])
        if body["kind"] == "basic":
            schema: ActivitySchema = BasicActivitySchema(
                body["schema_id"],
                body["name"],
                state_schema=state_schema,
                performer=_role_ref_from_dict(body.get("performer")),
            )
        else:
            schema = ProcessActivitySchema(
                body["schema_id"], body["name"], state_schema=state_schema
            )
        built[schema_id] = schema
        for variable in body["resource_variables"]:
            schema.add_resource_variable(_resource_variable_from_dict(variable))
        if isinstance(schema, ProcessActivitySchema):
            for variable in body["activity_variables"]:
                schema.add_activity_variable(
                    ActivityVariable(
                        name=variable["name"],
                        activity_schema=build(variable["schema_ref"]),
                        optional=variable["optional"],
                        performer=_role_ref_from_dict(variable.get("performer")),
                    )
                )
            for context in body["context_schemas"]:
                schema.add_context_schema(_context_schema_from_dict(context))
            for dependency in body["dependencies"]:
                dependency_type = DependencyType[dependency["type"]]
                condition = None
                if dependency_type is DependencyType.CONDITION:
                    if conditions is None:
                        raise SchemaError(
                            f"dependency {dependency['name']!r} names a "
                            f"condition; pass a ConditionRegistry to load it"
                        )
                    condition = conditions.lookup(dependency["condition"])
                schema.add_dependency(
                    DependencyVariable(
                        name=dependency["name"],
                        dependency_type=dependency_type,
                        sources=tuple(dependency["sources"]),
                        target=dependency["target"],
                        condition=condition,
                    )
                )
            for entry in body["entry_activities"]:
                schema.mark_entry(entry)
        return schema

    root = build(data["root"])
    root.validate()
    return root


def schema_from_json(
    payload: str,
    conditions: Optional[ConditionRegistry] = None,
) -> ActivitySchema:
    """Rebuild a schema graph from its JSON interchange form."""
    return schema_from_dict(json.loads(payload), conditions)
