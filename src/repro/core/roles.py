"""Participants, organizational roles, and scoped roles (Sections 4, 5.2).

Participant resources capture actors — humans or programs — that take
responsibility to start and perform activities.  Individuals can play one or
multiple roles.  Two role flavours exist:

* **Organizational roles** are global: an ``epidemiologist`` is an
  epidemiologist regardless of which process is running.  They are
  registered in the :class:`RoleDirectory`.
* **Scoped roles** are dynamically created, live *inside a context
  resource*, and are visible only to activity instances that can access the
  enclosing context.  A task-force leader or the ``Requestor`` of an
  information request are scoped roles: they exist exactly as long as their
  context does.

Role resolution happens *at detection/delivery time*, never at
specification time — this is what lets awareness reach people who joined a
task force after the process started.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import RoleError, RoleResolutionError
from .context import ContextResource


class ParticipantKind(enum.Enum):
    """Participants are either humans or programs (Section 4)."""

    HUMAN = "human"
    PROGRAM = "program"

    def __str__(self) -> str:
        return self.value


@dataclass
class Participant:
    """An individual actor.

    ``signed_on`` and ``load`` exist for awareness role assignment
    functions (Section 5.3 anticipates choosing recipients "based on their
    load or whether they are currently signed-on").
    """

    participant_id: str
    name: str
    kind: ParticipantKind = ParticipantKind.HUMAN
    signed_on: bool = False
    load: int = 0

    def sign_on(self) -> None:
        self.signed_on = True

    def sign_off(self) -> None:
        self.signed_on = False

    def __hash__(self) -> int:
        return hash(self.participant_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Participant):
            return NotImplemented
        return self.participant_id == other.participant_id


class OrganizationalRole:
    """A global role with an explicit member set.

    The frozen member-set view is cached: awareness delivery resolves the
    role once per recognized composite event, while membership changes are
    comparatively rare, so rebuilding the frozenset per resolution was
    measurable on the dispatch path.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._members: Set[Participant] = set()
        self._frozen: Optional[FrozenSet[Participant]] = None

    def add_member(self, participant: Participant) -> None:
        self._members.add(participant)
        self._frozen = None

    def remove_member(self, participant: Participant) -> None:
        self._members.discard(participant)
        self._frozen = None

    def members(self) -> FrozenSet[Participant]:
        frozen = self._frozen
        if frozen is None:
            frozen = self._frozen = frozenset(self._members)
        return frozen

    def __contains__(self, participant: Participant) -> bool:
        return participant in self._members

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OrganizationalRole({self.name!r}, members={len(self._members)})"


class ScopedRole:
    """A role that lives inside a context resource.

    A scoped role is visible only through its enclosing context; its
    lifetime is the context's lifetime.  Resolution fails once the context
    has been destroyed — exactly the behaviour the Section 5.4 example
    relies on: the ``Requestor`` role disappears when the information
    request process completes, which bounds the interval during which the
    deadline-violation awareness can be delivered.
    """

    def __init__(self, name: str, context: ContextResource) -> None:
        self.name = name
        self._context = context
        self._members: Set[Participant] = set()

    @property
    def context(self) -> ContextResource:
        return self._context

    @property
    def alive(self) -> bool:
        return not self._context.destroyed

    def add_member(self, participant: Participant) -> None:
        self._check_alive()
        self._members.add(participant)

    def remove_member(self, participant: Participant) -> None:
        self._members.discard(participant)

    def members(self) -> FrozenSet[Participant]:
        self._check_alive()
        return frozenset(self._members)

    def __contains__(self, participant: Participant) -> bool:
        return participant in self._members

    def _check_alive(self) -> None:
        if not self.alive:
            raise RoleError(
                f"scoped role {self.name!r} has expired: its context "
                f"{self._context.name!r} was destroyed"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "alive" if self.alive else "expired"
        return f"ScopedRole({self.name!r}, context={self._context.name!r}, {status})"


@dataclass(frozen=True)
class RoleRef:
    """A late-bound reference to a role, resolved at delivery time.

    ``context_name`` is ``None`` for organizational roles.  For scoped
    roles, the pair ``(context_name, role_name)`` names a role-valued field
    inside a context associated with the triggering process instance.
    """

    role_name: str
    context_name: Optional[str] = None

    @property
    def is_scoped(self) -> bool:
        return self.context_name is not None

    def __str__(self) -> str:
        if self.is_scoped:
            return f"{self.context_name}.{self.role_name}"
        return self.role_name


class RoleDirectory:
    """Registry of participants and organizational roles.

    The directory resolves :class:`RoleRef` objects to participant sets at
    call time.  Scoped role refs additionally need the set of contexts that
    are in scope for the triggering process instance; the awareness delivery
    agent supplies those (see :mod:`repro.awareness.delivery`).
    """

    def __init__(self) -> None:
        self._participants: Dict[str, Participant] = {}
        self._roles: Dict[str, OrganizationalRole] = {}

    # -- participants --------------------------------------------------------

    def register_participant(self, participant: Participant) -> Participant:
        if participant.participant_id in self._participants:
            raise RoleError(
                f"duplicate participant id {participant.participant_id!r}"
            )
        self._participants[participant.participant_id] = participant
        return participant

    def participant(self, participant_id: str) -> Participant:
        try:
            return self._participants[participant_id]
        except KeyError:
            raise RoleError(f"unknown participant {participant_id!r}") from None

    def participants(self) -> Tuple[Participant, ...]:
        return tuple(self._participants.values())

    # -- organizational roles -------------------------------------------------

    def define_role(self, name: str) -> OrganizationalRole:
        if name in self._roles:
            raise RoleError(f"duplicate organizational role {name!r}")
        role = OrganizationalRole(name)
        self._roles[name] = role
        return role

    def role(self, name: str) -> OrganizationalRole:
        try:
            return self._roles[name]
        except KeyError:
            raise RoleResolutionError(
                f"unknown organizational role {name!r}"
            ) from None

    def has_role(self, name: str) -> bool:
        return name in self._roles

    def roles(self) -> Tuple[OrganizationalRole, ...]:
        return tuple(self._roles.values())

    # -- resolution ------------------------------------------------------------

    def resolve_global(self, role_name: str) -> FrozenSet[Participant]:
        """Resolve an organizational role to its current member set."""
        return self.role(role_name).members()

    def resolve(
        self,
        ref: RoleRef,
        contexts_in_scope: Iterable[ContextResource] = (),
    ) -> FrozenSet[Participant]:
        """Resolve a role reference at call time.

        For a scoped ref, search the supplied in-scope contexts for a
        role-valued field ``ref.role_name`` inside a context named
        ``ref.context_name``.  Raises :class:`RoleResolutionError` when no
        live role is found — e.g. because the context has been destroyed,
        which is the mechanism that bounds awareness delivery intervals.
        """
        if not ref.is_scoped:
            return self.resolve_global(ref.role_name)
        for context in contexts_in_scope:
            if context.name != ref.context_name or context.destroyed:
                continue
            if not context.schema.has_field(ref.role_name):
                continue
            if not context._is_set(ref.role_name):
                continue
            value = context._get(ref.role_name)
            if isinstance(value, ScopedRole):
                return value.members()
            raise RoleResolutionError(
                f"field {ref.role_name!r} of context {ref.context_name!r} "
                f"is not a scoped role (got {type(value).__name__})"
            )
        raise RoleResolutionError(
            f"scoped role {ref} could not be resolved: no live context in scope"
        )
