"""CMM CORE model (Section 4 of the paper).

The CORE defines the common primitives shared by every CMM extension:

* activity state schemas — generic states (Figure 4) plus
  application-specific substate forests (:mod:`repro.core.states`);
* resources — data, helper, participant, and context resource types
  (:mod:`repro.core.resources`, :mod:`repro.core.context`);
* organizational and scoped roles (:mod:`repro.core.roles`);
* activity/process schemas built from the CMM meta types
  (:mod:`repro.core.metamodel`, :mod:`repro.core.schema`);
* run-time instances and the CORE engine
  (:mod:`repro.core.instances`, :mod:`repro.core.engine`).
"""

from .context import ContextReference, ContextResource, ContextSchema
from .engine import CoreEngine
from .instances import ActivityInstance, ProcessInstance
from .metamodel import (
    CMM_EXTENSIONS,
    DependencyType,
    Extension,
    MetaType,
    extension_dependencies,
)
from .resources import (
    DataResource,
    HelperResource,
    ResourceSchema,
    ResourceUsage,
)
from .roles import (
    OrganizationalRole,
    Participant,
    ParticipantKind,
    RoleDirectory,
    ScopedRole,
)
from .schema import (
    ActivityVariable,
    BasicActivitySchema,
    DependencyVariable,
    ProcessActivitySchema,
    ResourceVariable,
)
from .states import (
    ActivityStateSchema,
    StateMachine,
    StateNode,
    Transition,
    generic_activity_state_schema,
)

__all__ = [
    "ActivityInstance",
    "ActivityStateSchema",
    "ActivityVariable",
    "BasicActivitySchema",
    "CMM_EXTENSIONS",
    "ContextReference",
    "ContextResource",
    "ContextSchema",
    "CoreEngine",
    "DataResource",
    "DependencyType",
    "DependencyVariable",
    "Extension",
    "HelperResource",
    "MetaType",
    "OrganizationalRole",
    "Participant",
    "ParticipantKind",
    "ProcessActivitySchema",
    "ProcessInstance",
    "ResourceSchema",
    "ResourceUsage",
    "ResourceVariable",
    "RoleDirectory",
    "ScopedRole",
    "StateMachine",
    "StateNode",
    "Transition",
    "extension_dependencies",
    "generic_activity_state_schema",
]
