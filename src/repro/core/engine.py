"""The CORE Engine (Figure 5).

The CORE engine is the bottom layer of the CMI Enactment System.  It owns:

* the schema registries (activity schemas, activity state schemas, context
  schemas are carried inside process schemas);
* the live object stores: activity/process instances and context resources;
* the role directory (organizational roles + participants);
* the logical clock shared by the whole federation;
* the primitive-event hook points: every activity state change and every
  context field change is handed to registered listeners — the awareness
  event source agents of Section 6.3 attach here.

The coordination engine drives state transitions *through* the CORE engine;
the awareness delivery agent asks the CORE engine to resolve delivery roles
(Section 6.5: "resolves the awareness delivery role ... through an
interaction with the CORE Engine").
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..clock import LogicalClock
from ..errors import EnactmentError, RoleResolutionError, SchemaError
from ..ids import IdFactory
from .context import ContextChange, ContextReference, ContextResource, ContextSchema
from .instances import ActivityInstance, ActivityStateChange, ProcessInstance
from .roles import (
    Participant,
    RoleDirectory,
    RoleRef,
    ScopedRole,
)
from .schema import ActivitySchema, ActivityVariable, ProcessActivitySchema

ActivityListener = Callable[[ActivityStateChange], None]
ContextListener = Callable[[ContextChange], None]


class CoreEngine:
    """Schema registry, instance factory, context store, and event hub."""

    def __init__(self, clock: Optional[LogicalClock] = None) -> None:
        self.clock = clock or LogicalClock()
        self.roles = RoleDirectory()
        self._ids = IdFactory()
        self._schemas: Dict[str, ActivitySchema] = {}
        self._instances: Dict[str, ActivityInstance] = {}
        self._top_level: List[ProcessInstance] = []
        self._contexts: Dict[str, ContextResource] = {}
        self._activity_listeners: List[ActivityListener] = []
        self._context_listeners: List[ContextListener] = []

    # -- schema registry ------------------------------------------------------

    def register_schema(self, schema: ActivitySchema) -> ActivitySchema:
        """Validate and register an activity schema (basic or process).

        Registration is recursive: the schemas of a process's activity
        variables are registered too, so an application only hands its
        top-level schemas to the engine.  Re-registering the *same* schema
        object is a no-op; a different object under an existing id is an
        error.
        """
        existing = self._schemas.get(schema.schema_id)
        if existing is schema:
            return schema
        if existing is not None:
            raise SchemaError(f"duplicate schema id {schema.schema_id!r}")
        schema.validate()
        self._schemas[schema.schema_id] = schema
        if isinstance(schema, ProcessActivitySchema):
            for variable in schema.activity_variables():
                self.register_schema(variable.activity_schema)
        return schema

    def schema(self, schema_id: str) -> ActivitySchema:
        try:
            return self._schemas[schema_id]
        except KeyError:
            raise SchemaError(f"unknown schema {schema_id!r}") from None

    def schemas(self) -> Tuple[ActivitySchema, ...]:
        return tuple(self._schemas.values())

    def new_schema_id(self, name: str) -> str:
        return self._ids.new(f"schema-{name}")

    # -- event listeners ---------------------------------------------------------

    def on_activity_change(self, listener: ActivityListener) -> None:
        self._activity_listeners.append(listener)

    def on_context_change(self, listener: ContextListener) -> None:
        self._context_listeners.append(listener)

    # -- instance management -------------------------------------------------------

    def create_process_instance(
        self,
        schema: ProcessActivitySchema,
        parent: Optional[ProcessInstance] = None,
        activity_variable: Optional[ActivityVariable] = None,
    ) -> ProcessInstance:
        """Instantiate a process schema; creates its declared contexts."""
        self._require_registered(schema)
        instance = ProcessInstance(
            instance_id=self._ids.new("proc"),
            schema=schema,
            parent=parent,
            activity_variable=activity_variable,
        )
        self._instances[instance.instance_id] = instance
        if parent is None:
            self._top_level.append(instance)
        else:
            assert activity_variable is not None
            parent.add_child(activity_variable.name, instance)
        for context_schema in schema.context_schemas():
            self.create_context(context_schema, instance)
        return instance

    def create_activity_instance(
        self,
        parent: ProcessInstance,
        activity_variable_name: str,
    ) -> ActivityInstance:
        """Instantiate a subactivity of *parent* (basic or nested process)."""
        variable = parent.schema.activity_variable(activity_variable_name)
        child_schema = variable.activity_schema
        self._require_registered(child_schema)
        if isinstance(child_schema, ProcessActivitySchema):
            return self.create_process_instance(
                child_schema, parent=parent, activity_variable=variable
            )
        instance = ActivityInstance(
            instance_id=self._ids.new("act"),
            schema=child_schema,
            parent=parent,
            activity_variable=variable,
        )
        self._instances[instance.instance_id] = instance
        parent.add_child(variable.name, instance)
        return instance

    def instance(self, instance_id: str) -> ActivityInstance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise EnactmentError(f"unknown instance {instance_id!r}") from None

    def instances(self) -> Tuple[ActivityInstance, ...]:
        return tuple(self._instances.values())

    def top_level_processes(self) -> Tuple[ProcessInstance, ...]:
        return tuple(self._top_level)

    # -- state transitions --------------------------------------------------------

    def change_state(
        self,
        instance: ActivityInstance,
        new_state: str,
        user: Optional[str] = None,
    ) -> ActivityStateChange:
        """Perform a state transition and publish the primitive event."""
        change = instance.change_state(new_state, time=self.clock.tick(), user=user)
        for listener in list(self._activity_listeners):
            listener(change)
        return change

    # -- contexts ---------------------------------------------------------------------

    def create_context(
        self,
        schema: ContextSchema,
        owner: ProcessInstance,
    ) -> ContextReference:
        """Create a context resource associated with (and held by) *owner*."""
        context = ContextResource(self._ids.new("ctx"), schema)
        context._associate(owner.schema.schema_id, owner.instance_id)
        context.add_listener(self._publish_context_change)
        self._contexts[context.context_id] = context
        ref = ContextReference(context, owner.instance_id, self.clock.now)
        owner.hold_context(ref)
        return ref

    def share_context(
        self, ref: ContextReference, subprocess: ProcessInstance
    ) -> ContextReference:
        """Pass a context into a subprocess scope (Section 5.4 pattern).

        The subprocess gains a reference and the context records the new
        process association, so subsequent field-change events list both
        processes.
        """
        context = ref._resource
        context._associate(subprocess.schema.schema_id, subprocess.instance_id)
        child_ref = ref.pass_to(subprocess.instance_id)
        subprocess.hold_context(child_ref)
        return child_ref

    def destroy_context(self, ref: ContextReference) -> None:
        """Destroy the context; its scoped roles expire immediately."""
        ref._resource._destroy()

    def context_resource(self, context_id: str) -> ContextResource:
        try:
            return self._contexts[context_id]
        except KeyError:
            raise EnactmentError(f"unknown context {context_id!r}") from None

    def contexts_for_instance(
        self, process_instance_id: str
    ) -> Tuple[ContextResource, ...]:
        """All live contexts associated with a process instance.

        The awareness delivery agent uses this to resolve scoped delivery
        roles against the triggering process instance's scope.
        """
        found = []
        for context in self._contexts.values():
            if context.destroyed:
                continue
            for __, instance_id in context.associations():
                if instance_id == process_instance_id:
                    found.append(context)
                    break
        return tuple(found)

    # -- scoped roles -----------------------------------------------------------------

    def create_scoped_role(
        self,
        ref: ContextReference,
        field_name: str,
        members: Tuple[Participant, ...] = (),
    ) -> ScopedRole:
        """Create a scoped role stored in a role-valued context field."""
        role = ScopedRole(field_name, ref._resource)
        for member in members:
            role.add_member(member)
        ref.set(field_name, role)
        return role

    def resolve_role(
        self,
        role_ref: RoleRef,
        process_instance_id: Optional[str] = None,
    ) -> FrozenSet[Participant]:
        """Resolve a (possibly scoped) role reference at call time."""
        contexts = ()
        if role_ref.is_scoped:
            if process_instance_id is None:
                raise RoleResolutionError(
                    f"scoped role {role_ref} requires a process instance scope"
                )
            contexts = self.contexts_for_instance(process_instance_id)
        return self.roles.resolve(role_ref, contexts)

    # -- internals ---------------------------------------------------------------------

    def _publish_context_change(self, change: ContextChange) -> None:
        for listener in list(self._context_listeners):
            listener(change)

    def _require_registered(self, schema: ActivitySchema) -> None:
        if schema.schema_id not in self._schemas:
            raise SchemaError(
                f"schema {schema.name!r} ({schema.schema_id!r}) is not "
                f"registered with the CORE engine"
            )
