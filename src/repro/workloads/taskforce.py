"""The Section 5/5.4 task-force application.

The scenario, exactly as the paper sets it up:

* a health crisis leader creates a **task force** to assess the progress of
  an epidemic; the *task force process* creates ``TaskForceContext`` with
  the membership (``TaskForceMembers`` scoped role) and the deadline
  (``TaskForceDeadline``) as fields;
* task force members may start an **information request** subprocess with a
  separate ``RequestDeadline`` that must be earlier than the task-force
  deadline; the information-request process creates ``InfoRequestContext``
  holding a ``Requestor`` scoped role (the member who invoked the request);
* the task-force context is **passed** to the information-request
  subprocess (shared scope);
* the ``AS_InfoRequest`` awareness schema notifies the requestor when the
  task-force deadline is moved to or before the request deadline:
  ``AD = Compare2[InfoRequest, <=](Filter_ctx[TaskForceContext.
  TaskForceDeadline], Filter_ctx[InfoRequestContext.RequestDeadline])``
  with delivery role ``InfoRequestContext.Requestor`` and the identity
  assignment.

:class:`TaskForceApplication` packages schema construction, awareness
installation, and the run-time operations (create task force, request
information, change deadlines) behind one facade so the example, the unit
tests, and the EX54 benchmark all drive the same code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..awareness.schema import AwarenessSchema
from ..core.context import ContextFieldSpec, ContextSchema
from ..core.instances import ProcessInstance
from ..core.roles import Participant, RoleRef
from ..core.schema import (
    ActivityVariable,
    BasicActivitySchema,
    ProcessActivitySchema,
)
from ..errors import WorkloadError
from ..federation.system import EnactmentSystem

#: Schema / context / field names from Section 5.4, verbatim.
TASK_FORCE_SCHEMA = "P-TaskForce"
INFO_REQUEST_SCHEMA = "P-InfoRequest"
TASK_FORCE_CONTEXT = "TaskForceContext"
INFO_REQUEST_CONTEXT = "InfoRequestContext"
TASK_FORCE_MEMBERS = "TaskForceMembers"
TASK_FORCE_DEADLINE = "TaskForceDeadline"
REQUESTOR = "Requestor"
REQUEST_DEADLINE = "RequestDeadline"
AWARENESS_SCHEMA_NAME = "AS_InfoRequest"


@dataclass
class InformationRequest:
    """A running information-request subprocess and its scoped state."""

    process: ProcessInstance
    requestor: Participant

    @property
    def deadline(self) -> int:
        return self.process.context(INFO_REQUEST_CONTEXT).get(REQUEST_DEADLINE)


@dataclass
class TaskForce:
    """A running task-force process and its scoped state."""

    process: ProcessInstance
    leader: Participant
    members: Tuple[Participant, ...]

    @property
    def deadline(self) -> int:
        return self.process.context(TASK_FORCE_CONTEXT).get(TASK_FORCE_DEADLINE)


class TaskForceApplication:
    """Facade over an enactment system running the Section 5.4 scenario."""

    def __init__(
        self,
        system: EnactmentSystem,
        suffix: str = "",
        max_requests: int = 8,
    ) -> None:
        if max_requests < 1:
            raise WorkloadError("max_requests must be at least 1")
        self.system = system
        self.suffix = suffix
        self.max_requests = max_requests
        self._build_schemas()
        self.awareness_schema: Optional[AwarenessSchema] = None

    # -- schema construction -------------------------------------------------------

    def _sid(self, base: str) -> str:
        return f"{base}{self.suffix}"

    def _build_schemas(self) -> None:
        core = self.system.core
        tf_context = ContextSchema(
            TASK_FORCE_CONTEXT,
            [
                ContextFieldSpec(TASK_FORCE_MEMBERS, "role"),
                ContextFieldSpec(TASK_FORCE_DEADLINE, "int"),
            ],
        )
        ir_context = ContextSchema(
            INFO_REQUEST_CONTEXT,
            [
                ContextFieldSpec(REQUESTOR, "role"),
                ContextFieldSpec(REQUEST_DEADLINE, "int"),
            ],
        )

        # Performers are organizational roles; awareness delivery uses the
        # scoped roles (Section 5.2: delivery roles may differ from the
        # roles used for process coordination).
        performer = RoleRef("epidemiologist")
        self.gather_schema = BasicActivitySchema(
            self._sid("B-Gather"), "gather-information", performer=performer
        )
        self.info_request_schema = ProcessActivitySchema(
            self._sid(INFO_REQUEST_SCHEMA), "information-request"
        )
        self.info_request_schema.add_context_schema(ir_context)
        self.info_request_schema.add_activity_variable(
            ActivityVariable("gather", self.gather_schema)
        )
        self.info_request_schema.mark_entry("gather")

        self.assess_schema = BasicActivitySchema(
            self._sid("B-Assess"),
            "assess-epidemic-progress",
            performer=performer,
        )
        self.task_force_schema = ProcessActivitySchema(
            self._sid(TASK_FORCE_SCHEMA), "task-force"
        )
        self.task_force_schema.add_context_schema(tf_context)
        self.task_force_schema.add_activity_variable(
            ActivityVariable("assess", self.assess_schema)
        )
        # Several optional information-request slots: a task force may file
        # more than one request over its lifetime (the CMM binds one
        # instance per activity variable, so the schema declares a pool).
        for index in range(1, self.max_requests + 1):
            self.task_force_schema.add_activity_variable(
                ActivityVariable(
                    f"inforequest{index}", self.info_request_schema, optional=True
                )
            )
        self.task_force_schema.mark_entry("assess")

        for schema in (
            self.gather_schema,
            self.info_request_schema,
            self.assess_schema,
            self.task_force_schema,
        ):
            core.register_schema(schema)

    # -- awareness specification (Section 5.4 / Figure 6, right-hand schema) --------

    def install_awareness(self) -> AwarenessSchema:
        """Author and deploy ``AS_InfoRequest`` on this system."""
        if self.awareness_schema is not None:
            raise WorkloadError("AS_InfoRequest is already installed")
        window = self.system.awareness.create_window(
            self.info_request_schema.schema_id
        )
        op1 = window.place(
            "Filter_context",
            TASK_FORCE_CONTEXT,
            TASK_FORCE_DEADLINE,
            instance_name="op1",
        )
        op2 = window.place(
            "Filter_context",
            INFO_REQUEST_CONTEXT,
            REQUEST_DEADLINE,
            instance_name="op2",
        )
        compare = window.place("Compare2", "<=", instance_name="deadline<=")
        window.connect(window.source("ContextEvent"), op1, 0)
        window.connect(window.source("ContextEvent"), op2, 0)
        window.connect(op1, compare, 0)
        window.connect(op2, compare, 1)
        self.awareness_schema = window.output(
            compare,
            delivery_role=RoleRef(REQUESTOR, INFO_REQUEST_CONTEXT),
            assignment_name="identity",
            user_description=(
                "Task force deadline moved earlier than your information "
                "request deadline; renegotiate or cancel the request"
            ),
            schema_name=AWARENESS_SCHEMA_NAME,
        )
        self.window = window
        self.system.awareness.deploy(window)
        return self.awareness_schema

    # -- run-time operations ------------------------------------------------------------

    def create_task_force(
        self,
        leader: Participant,
        members: Iterable[Participant],
        deadline: int,
    ) -> TaskForce:
        """The health crisis leader creates a task force (Section 5)."""
        member_tuple = tuple(members)
        if leader not in member_tuple:
            member_tuple = (leader, *member_tuple)
        process = self.system.coordination.start_process(self.task_force_schema)
        ref = process.context(TASK_FORCE_CONTEXT)
        self.system.core.create_scoped_role(ref, TASK_FORCE_MEMBERS, member_tuple)
        ref.set(TASK_FORCE_DEADLINE, deadline)
        return TaskForce(process=process, leader=leader, members=member_tuple)

    def change_task_force_deadline(self, task_force: TaskForce, deadline: int) -> None:
        """The leader changes the deadline "due to changes in the external
        situation" — the awareness trigger of Section 5.4."""
        task_force.process.context(TASK_FORCE_CONTEXT).set(
            TASK_FORCE_DEADLINE, deadline
        )

    def request_information(
        self,
        task_force: TaskForce,
        requestor: Participant,
        deadline: int,
    ) -> InformationRequest:
        """A member invokes the information-request subprocess."""
        if requestor not in task_force.members:
            raise WorkloadError(
                f"{requestor.name!r} is not a member of the task force"
            )
        slot = next(
            (
                f"inforequest{index}"
                for index in range(1, self.max_requests + 1)
                if not task_force.process.has_child(f"inforequest{index}")
            ),
            None,
        )
        if slot is None:
            raise WorkloadError(
                f"task force already filed its maximum of "
                f"{self.max_requests} information requests"
            )
        process = self.system.coordination.start_optional_activity(
            task_force.process, slot, user=requestor.name
        )
        assert isinstance(process, ProcessInstance)
        # Pass the task-force context into the subprocess scope (Section
        # 5.4: "this context would be passed to the information request
        # subprocess").
        tf_ref = task_force.process.context(TASK_FORCE_CONTEXT)
        self.system.core.share_context(tf_ref, process)
        ir_ref = process.context(INFO_REQUEST_CONTEXT)
        self.system.core.create_scoped_role(ir_ref, REQUESTOR, (requestor,))
        ir_ref.set(REQUEST_DEADLINE, deadline)
        return InformationRequest(process=process, requestor=requestor)

    def change_request_deadline(
        self, request: InformationRequest, deadline: int
    ) -> None:
        """The requestor renegotiates the request deadline."""
        request.process.context(INFO_REQUEST_CONTEXT).set(
            REQUEST_DEADLINE, deadline
        )

    def complete_request(self, request: InformationRequest) -> None:
        """Finish the information request; its context (and the Requestor
        scoped role) is destroyed — ending the awareness delivery interval."""
        gather = request.process.child("gather")
        if not gather.is_closed():
            if gather.current_state == "Uninitialized":
                self.system.core.change_state(gather, "Ready")
            if gather.current_state == "Ready":
                self.system.core.change_state(gather, "Running")
            self.system.coordination.complete_activity(
                gather, user=request.requestor.name
            )
        self.system.core.destroy_context(
            request.process.context(INFO_REQUEST_CONTEXT)
        )

    def cancel_request(self, request: InformationRequest) -> None:
        """The requestor cancels after a deadline-violation notification."""
        self.system.coordination.terminate_activity(
            request.process, user=request.requestor.name
        )
        self.system.core.destroy_context(
            request.process.context(INFO_REQUEST_CONTEXT)
        )
