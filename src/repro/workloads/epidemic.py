"""The Figure 1 epidemic information-gathering process.

"Suppose a group of similar disease reports is discovered in a region of
the country.  The health organization for that region would start a
process responsible for understanding the nature of the disease and
containing the outbreak."  Figure 1 shows the course of that process:

* always-required activities — the patient-interview task force, the
  hospital-relations task force, and the media task force;
* optional activities decided by participants at run time — the
  vector-of-transmission task force, up to three lab tests, and up to two
  rounds of invited local expertise.

The module also implements the Section 2 lab-test awareness requirement:
"if any of these tests is positive, the other tests are not necessary.
Providing awareness in this case may involve notifying both the test
requestor and those conducting the alternative tests when a positive
result is found."  The ``AS_PositiveLab`` schema composes
``Filter_context`` over the three result fields with ``Or`` and
``Compare1[== positive]``, delivered to the ``LabStakeholders`` scoped
role.

:class:`EpidemicScenario` is a deterministic driver (seeded) that plays the
whole Figure 1 course: it makes the run-time decisions, drives worklists,
and collects the timeline the FIG1 benchmark prints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..awareness.schema import AwarenessSchema
from ..core.context import ContextFieldSpec, ContextSchema
from ..core.instances import ProcessInstance
from ..core.roles import Participant, RoleRef
from ..core.schema import (
    ActivityVariable,
    BasicActivitySchema,
    DependencyVariable,
    ProcessActivitySchema,
)
from ..core.metamodel import DependencyType
from ..errors import WorkloadError
from ..federation.system import EnactmentSystem

#: Context and field names of the crisis process.
CRISIS_CONTEXT = "CrisisContext"
REGION_FIELD = "Region"
LAB_STAKEHOLDERS = "LabStakeholders"
LAB_RESULT_FIELDS = ("LabResult1", "LabResult2", "LabResult3")

#: Lab result encoding used in the integer context fields.
NEGATIVE, POSITIVE = 0, 1

AWARENESS_POSITIVE_LAB = "AS_PositiveLab"


def _task_force_schema(
    schema_id: str, name: str, steps: Tuple[str, ...], performer: RoleRef
) -> ProcessActivitySchema:
    """A task-force subprocess: the given steps in strict sequence."""
    schema = ProcessActivitySchema(schema_id, name)
    previous: Optional[str] = None
    for step in steps:
        basic = BasicActivitySchema(
            f"{schema_id}/{step}", f"{name}:{step}", performer=performer
        )
        schema.add_activity_variable(ActivityVariable(step, basic))
        if previous is None:
            schema.mark_entry(step)
        else:
            schema.add_dependency(
                DependencyVariable(
                    f"seq-{previous}-{step}",
                    DependencyType.SEQUENCE,
                    (previous,),
                    step,
                )
            )
        previous = step
    return schema


def build_epidemic_application(
    system: EnactmentSystem, suffix: str = ""
) -> "EpidemicApplication":
    """Register the Figure 1 schemas on *system* and return the facade."""
    return EpidemicApplication(system, suffix)


class EpidemicApplication:
    """Schemas + awareness of the information-gathering process."""

    def __init__(self, system: EnactmentSystem, suffix: str = "") -> None:
        self.system = system
        self.suffix = suffix
        self._build_schemas()
        self.awareness_schema: Optional[AwarenessSchema] = None

    def _sid(self, base: str) -> str:
        return f"{base}{self.suffix}"

    def _build_schemas(self) -> None:
        epidemiologist = RoleRef("epidemiologist")
        media_officer = RoleRef("media-officer")
        lab_technician = RoleRef("lab-technician")
        external_expert = RoleRef("external-expert")

        self.patient_tf = _task_force_schema(
            self._sid("P-PatientTF"),
            "patient-interview-task-force",
            ("identify-patients", "interview", "summarize"),
            epidemiologist,
        )
        self.hospital_tf = _task_force_schema(
            self._sid("P-HospitalTF"),
            "hospital-relations-task-force",
            ("contact-hospitals", "collect-reports"),
            epidemiologist,
        )
        self.vector_tf = _task_force_schema(
            self._sid("P-VectorTF"),
            "vector-of-transmission-task-force",
            ("trace-contacts", "model-spread"),
            epidemiologist,
        )
        self.media_tf = _task_force_schema(
            self._sid("P-MediaTF"),
            "media-task-force",
            ("draft-statement", "brief-press"),
            media_officer,
        )

        self.lab_test = BasicActivitySchema(
            self._sid("B-LabTest"), "lab-test", performer=lab_technician
        )
        self.local_expertise = BasicActivitySchema(
            self._sid("B-LocalExpertise"),
            "local-expertise",
            performer=external_expert,
        )

        crisis_context = ContextSchema(
            CRISIS_CONTEXT,
            [
                ContextFieldSpec(REGION_FIELD, "str"),
                ContextFieldSpec(LAB_STAKEHOLDERS, "role"),
                *[ContextFieldSpec(name, "int") for name in LAB_RESULT_FIELDS],
            ],
        )

        self.info_gathering = ProcessActivitySchema(
            self._sid("P-InfoGathering"), "information-gathering"
        )
        self.info_gathering.add_context_schema(crisis_context)
        for name, schema in (
            ("patient_tf", self.patient_tf),
            ("hospital_tf", self.hospital_tf),
            ("media_tf", self.media_tf),
        ):
            self.info_gathering.add_activity_variable(
                ActivityVariable(name, schema)
            )
            self.info_gathering.mark_entry(name)
        # Optional, decided at run time (Figure 1).
        self.info_gathering.add_activity_variable(
            ActivityVariable("vector_tf", self.vector_tf, optional=True)
        )
        for index in range(1, 4):
            self.info_gathering.add_activity_variable(
                ActivityVariable(f"labtest{index}", self.lab_test, optional=True)
            )
        for index in range(1, 3):
            self.info_gathering.add_activity_variable(
                ActivityVariable(
                    f"expertise{index}", self.local_expertise, optional=True
                )
            )

        for schema in (
            self.patient_tf,
            self.hospital_tf,
            self.vector_tf,
            self.media_tf,
            self.lab_test,
            self.local_expertise,
            self.info_gathering,
        ):
            self.system.core.register_schema(schema)

    # -- awareness: the positive-lab-result schema (Section 2) --------------------

    def install_awareness(self) -> AwarenessSchema:
        """Deploy ``AS_PositiveLab``: Or over result filters + Compare1."""
        if self.awareness_schema is not None:
            raise WorkloadError("AS_PositiveLab is already installed")
        window = self.system.awareness.create_window(
            self.info_gathering.schema_id
        )
        filters = []
        for field_name in LAB_RESULT_FIELDS:
            op = window.place(
                "Filter_context",
                CRISIS_CONTEXT,
                field_name,
                instance_name=f"filter-{field_name}",
            )
            window.connect(window.source("ContextEvent"), op, 0)
            filters.append(op)
        merge = window.place("Or", arity=len(filters), instance_name="any-result")
        for slot, op in enumerate(filters):
            window.connect(op, merge, slot)
        positive = window.place(
            "Compare1",
            lambda value: value == POSITIVE,
            instance_name="is-positive",
        )
        window.connect(merge, positive, 0)
        self.awareness_schema = window.output(
            positive,
            delivery_role=RoleRef(LAB_STAKEHOLDERS, CRISIS_CONTEXT),
            assignment_name="identity",
            user_description=(
                "A lab test came back positive; remaining tests are "
                "unnecessary"
            ),
            schema_name=AWARENESS_POSITIVE_LAB,
        )
        self.window = window
        self.system.awareness.deploy(window)
        return self.awareness_schema

    # -- process start ---------------------------------------------------------------

    def start(self, region: str, stakeholders: Tuple[Participant, ...]) -> ProcessInstance:
        process = self.system.coordination.start_process(self.info_gathering)
        ref = process.context(CRISIS_CONTEXT)
        ref.set(REGION_FIELD, region)
        self.system.core.create_scoped_role(ref, LAB_STAKEHOLDERS, stakeholders)
        return process


@dataclass
class ScenarioReport:
    """What one scenario run produced (consumed by FIG1 and tests)."""

    process: ProcessInstance
    lab_tests_run: int
    positive_test: Optional[int]
    vector_tf_started: bool
    expertise_rounds: int
    notifications_by_participant: Dict[str, int] = field(default_factory=dict)
    timeline: str = ""


class EpidemicScenario:
    """Deterministic driver playing one Figure 1 course of the process."""

    def __init__(self, system: EnactmentSystem, seed: int = 7) -> None:
        self.system = system
        self.random = random.Random(seed)
        self.app = build_epidemic_application(system, suffix=f"@{seed}")
        self._setup_participants()

    def _setup_participants(self) -> None:
        roles = self.system.core.roles
        if not roles.has_role("epidemiologist"):
            roles.define_role("epidemiologist")
            roles.define_role("media-officer")
            roles.define_role("lab-technician")
            roles.define_role("external-expert")
        suffix = self.app.suffix

        def person(pid: str, name: str, role: str) -> Participant:
            participant = roles.register_participant(
                Participant(f"{pid}{suffix}", f"{name}{suffix}")
            )
            roles.role(role).add_member(participant)
            return participant

        self.leader = person("lead", "dr-lee", "epidemiologist")
        self.epidemiologists = [
            person(f"epi{i}", f"epidemiologist-{i}", "epidemiologist")
            for i in range(1, 4)
        ]
        self.media = person("media", "press-officer", "media-officer")
        self.technicians = [
            person(f"tech{i}", f"lab-tech-{i}", "lab-technician")
            for i in range(1, 3)
        ]
        self.experts = [
            person(f"exp{i}", f"expert-{i}", "external-expert")
            for i in range(1, 3)
        ]

    def _drain_worklists(self) -> int:
        """Everyone works until no open offers remain; returns items done."""
        participants = [
            self.leader,
            *self.epidemiologists,
            self.media,
            *self.technicians,
            *self.experts,
        ]
        done = 0
        progressed = True
        while progressed:
            progressed = False
            for participant in participants:
                client = self.system.participant_client(participant)
                items = [
                    i for i in client.work_items() if i.claimed_by is None
                ]
                for item in items:
                    client.claim(item)
                    self.system.clock.advance(self.random.randint(1, 3))
                    client.complete(item)
                    done += 1
                    progressed = True
        return done

    def run(self) -> ScenarioReport:
        """Play the full scenario; decisions are seeded-random but the
        structure always matches Figure 1."""
        self.app.install_awareness()
        process = self.app.start(
            region="region-9",
            stakeholders=(self.leader, *self.technicians),
        )
        coordination = self.system.coordination
        clock = self.system.clock

        # The three always-required task forces started as entry activities;
        # members work through them.
        self._drain_worklists()

        # Decision: investigate the vector of transmission?
        vector_started = self.random.random() < 0.8
        if vector_started:
            coordination.start_optional_activity(
                process, "vector_tf", user=self.leader.name
            )
            self._drain_worklists()

        # Lab tests, one after the other; a positive result makes the
        # remaining ones unnecessary (Section 2).
        ref = process.context(CRISIS_CONTEXT)
        positive_at: Optional[int] = None
        tests_run = 0
        for index in range(1, 4):
            coordination.start_optional_activity(
                process, f"labtest{index}", user=self.leader.name
            )
            self._drain_worklists()
            tests_run += 1
            clock.advance(2)
            result = POSITIVE if self.random.random() < 0.4 else NEGATIVE
            ref.set(LAB_RESULT_FIELDS[index - 1], result)
            if result == POSITIVE:
                positive_at = index
                break

        # Decision: invite local expertise (up to twice).
        expertise_rounds = 0
        for index in range(1, 3):
            if self.random.random() < 0.6:
                coordination.start_optional_activity(
                    process, f"expertise{index}", user=self.leader.name
                )
                self._drain_worklists()
                expertise_rounds += 1

        notifications: Dict[str, int] = {}
        for participant in (self.leader, *self.technicians):
            client = self.system.participant_client(participant)
            notifications[participant.name] = len(client.check_awareness())

        return ScenarioReport(
            process=process,
            lab_tests_run=tests_run,
            positive_test=positive_at,
            vector_tf_started=vector_started,
            expertise_rounds=expertise_rounds,
            notifications_by_participant=notifications,
            timeline=self.system.monitor.timeline(process),
        )
