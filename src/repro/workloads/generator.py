"""Parameterized crisis workload with ground-truth relevance (QE1).

The paper claims (Sections 1, 2, 7) that CMI's customized awareness
"minimizes information overloading" compared with the built-in choices of
existing technology, while still delivering the situations that matter.
This workload makes the claim measurable:

* ``n`` task forces are created, each with ``m`` members drawn from an
  epidemiologist pool; members file information requests with deadlines;
  leaders move task-force deadlines — sometimes violating live request
  deadlines (the Section 5.4 situation), sometimes harmlessly;
* every mechanism under comparison observes the *same* run: CMI's
  ``AS_InfoRequest`` schema plus the five Section 2 baselines;
* the generator records **ground truth**: each deadline violation is a
  relevant fact for exactly the live requestors it affects; each work-item
  offer is a relevant fact for its candidates;
* mechanism deliveries are translated into the ground-truth vocabulary
  under two leniency modes:

  - **raw-signal** mode credits a mechanism when the undigested primitive
    event carrying the situation reached the right user at the right time
    (a manager staring at the monitor *could* derive the violation);
  - **digested** mode credits only mechanisms that delivered the situation
    as composed, digested information (what Section 1 calls awareness) —
    among the implemented mechanisms only CMI can, because the two-source
    deadline comparison is inexpressible in single-event content filters.

Expected shape (DESIGN.md): monitor-everything reaches raw recall 1.0 at an
order of magnitude more deliveries per user; worklist-only is precise but
blind to situations; content filtering sits between; CMI delivers the
situations at near-minimal delivery counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..events.event import Event
from ..events.producers import CONTEXT_EVENT_TYPE
from ..parallel.host import FederationBlueprint, ShardSpec
from ..parallel.router import ShardRouter
from ..baselines import (
    BaselineAdapter,
    ContentFilterPubSub,
    Delivery,
    EmailNotification,
    LogAnalysisAwareness,
    MonitorAllAwareness,
    WorklistOnlyAwareness,
)
from ..core.roles import Participant
from ..errors import WorkloadError
from ..federation.system import EnactmentSystem
from ..metrics.overload import GroundTruth, MechanismScore, score_mechanism
from ..metrics.report import render_table
from .taskforce import (
    INFO_REQUEST_CONTEXT,
    TASK_FORCE_DEADLINE,
    TaskForceApplication,
    InformationRequest,
    TaskForce,
)


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic crisis workload."""

    task_forces: int = 5
    members_per_force: int = 4
    requests_per_force: int = 2
    deadline_moves_per_force: int = 2
    violation_probability: float = 0.5
    participant_pool: int = 12
    seed: int = 11

    def __post_init__(self) -> None:
        if self.task_forces < 1:
            raise WorkloadError("workload needs at least one task force")
        if self.members_per_force < 2:
            raise WorkloadError("task forces need at least two members")
        if self.participant_pool < self.members_per_force:
            raise WorkloadError(
                "participant pool smaller than a single task force"
            )
        if not 0.0 <= self.violation_probability <= 1.0:
            raise WorkloadError("violation probability must be in [0, 1]")


@dataclass
class WorkloadResult:
    """Scores of every mechanism, in both leniency modes."""

    config: WorkloadConfig
    raw_scores: List[MechanismScore]
    digested_scores: List[MechanismScore]
    violations: int
    work_items: int
    cmi_deliveries: int

    def table(self, mode: str = "raw") -> str:
        from ..metrics.overload import SCORE_HEADERS

        scores = self.raw_scores if mode == "raw" else self.digested_scores
        return render_table(
            SCORE_HEADERS,
            [s.as_row() for s in scores],
            title=f"QE1 information overload — {mode} mode "
            f"({self.violations} violations, {self.work_items} work items)",
        )


class CrisisWorkload:
    """One seeded run of the comparison workload."""

    def __init__(self, config: Optional[WorkloadConfig] = None) -> None:
        self.config = config or WorkloadConfig()
        self.random = random.Random(self.config.seed)
        self.system = EnactmentSystem()
        self.app = TaskForceApplication(self.system)
        self.app.install_awareness()
        self._setup_participants()
        self._setup_baselines()
        #: (tick, context_id, frozenset of violated requestor ids)
        self._violations: List[Tuple[int, str, frozenset]] = []

    # -- setup --------------------------------------------------------------------

    def _setup_participants(self) -> None:
        roles = self.system.core.roles
        role = roles.define_role("epidemiologist")
        self.pool: List[Participant] = []
        for index in range(1, self.config.participant_pool + 1):
            participant = roles.register_participant(
                Participant(f"epi-{index}", f"epidemiologist-{index}")
            )
            role.add_member(participant)
            self.pool.append(participant)

    def _setup_baselines(self) -> None:
        core = self.system.core
        self.worklist_only = WorklistOnlyAwareness(
            core, self.system.coordination.worklists
        )
        self.monitor_all = MonitorAllAwareness(core, self.pool)
        self.content_filter = ContentFilterPubSub(core)
        # Every pool member over-subscribes to all deadline changes — the
        # best a content filter can do without composition or scoped roles.
        for participant in self.pool:
            self.content_filter.subscribe(
                participant.participant_id,
                lambda attrs: attrs.get("kind") == "context"
                and str(attrs.get("fieldName", "")).endswith("Deadline"),
                label="deadline-changes",
            )
        self.email = EmailNotification(core)
        # A static all-hands list notified when any information request
        # completes — the typical InConcert-style rule.
        self.email.add_rule(
            "information-request",
            "Completed",
            tuple(p.participant_id for p in self.pool),
        )
        # The Section 2 do-it-yourself option: a custom application that
        # polls the monitoring logs and reconstructs deadline violations.
        # It CAN derive the situation (custom code), but late (polling)
        # and over-broadly (no scoped roles in the log -> broadcast).
        self.log_analysis = LogAnalysisAwareness(
            core,
            recipients=tuple(p.participant_id for p in self.pool),
            poll_interval=25,
        )
        self.log_analysis.add_analysis(self._make_violation_analysis())

    def _make_violation_analysis(self):
        """Custom log analysis reconstructing Section 5.4 violations.

        State persists across polls: the latest request deadline per live
        information-request instance and the set of closed instances
        (observed through the activity log).
        """
        from ..workloads.taskforce import (
            INFO_REQUEST_CONTEXT,
            REQUEST_DEADLINE,
            TASK_FORCE_CONTEXT,
        )

        request_deadlines: Dict[str, int] = {}
        closed_instances: set = set()
        ir_schema_id = self.app.info_request_schema.schema_id

        def analysis(activity_slice, context_slice):
            detected = []
            # Replay both logs merged in time order, so a request closed
            # *after* a violation inside the same polling window does not
            # retroactively mask it.
            merged = sorted(
                [("activity", c.time, c) for c in activity_slice]
                + [("context", c.time, c) for c in context_slice],
                key=lambda entry: entry[1],
            )
            for kind, __, change in merged:
                if kind == "activity":
                    if (
                        change.activity_process_schema_id == ir_schema_id
                        and change.new_state in ("Completed", "Terminated")
                    ):
                        closed_instances.add(change.activity_instance_id)
                    continue
                if (
                    change.context_name == INFO_REQUEST_CONTEXT
                    and change.field_name == REQUEST_DEADLINE
                ):
                    for schema_id, instance_id in change.associations:
                        if schema_id == ir_schema_id:
                            request_deadlines[instance_id] = change.new_value
                elif (
                    change.context_name == TASK_FORCE_CONTEXT
                    and change.field_name == TASK_FORCE_DEADLINE
                ):
                    new_deadline = change.new_value
                    violated = False
                    for schema_id, instance_id in change.associations:
                        if schema_id != ir_schema_id:
                            continue
                        if instance_id in closed_instances:
                            continue
                        deadline = request_deadlines.get(instance_id)
                        if deadline is not None and new_deadline <= deadline:
                            violated = True
                    if violated:
                        detected.append(
                            (("violation", change.time), change.time)
                        )
            return detected

        return analysis

    # -- scenario -----------------------------------------------------------------------

    def run(self) -> WorkloadResult:
        for __ in range(self.config.task_forces):
            self._run_task_force()
        return self._score()

    def _run_task_force(self) -> None:
        members = self.random.sample(self.pool, self.config.members_per_force)
        leader = members[0]
        clock = self.system.clock
        clock.advance(self.random.randint(1, 4))
        base_deadline = clock.now() + 100
        task_force = self.app.create_task_force(leader, members, base_deadline)

        # Members file information requests with earlier deadlines.
        live_requests: List[InformationRequest] = []
        for index in range(self.config.requests_per_force):
            requestor = members[1 + index % (len(members) - 1)]
            clock.advance(self.random.randint(1, 3))
            request_deadline = base_deadline - self.random.randint(10, 40)
            live_requests.append(
                self.app.request_information(
                    task_force, requestor, request_deadline
                )
            )

        # The leader moves the task-force deadline; some moves violate.
        current_deadline = base_deadline
        for __ in range(self.config.deadline_moves_per_force):
            clock.advance(self.random.randint(1, 5))
            violate = self.random.random() < self.config.violation_probability
            if violate and live_requests:
                target = min(r.deadline for r in live_requests)
                new_deadline = target - self.random.randint(0, 5)
            else:
                new_deadline = current_deadline + self.random.randint(5, 20)
            self.app.change_task_force_deadline(task_force, new_deadline)
            current_deadline = new_deadline
            violated = frozenset(
                r.requestor.participant_id
                for r in live_requests
                if new_deadline <= r.deadline
            )
            if violated:
                context_id = task_force.process.context(
                    "TaskForceContext"
                ).context_id
                self._violations.append((clock.now(), context_id, violated))

        # Requests finish (their scoped Requestor roles expire).
        for request in live_requests:
            clock.advance(1)
            self.app.complete_request(request)

        # Members work the assessment activity.
        for participant in members:
            client = self.system.participant_client(participant)
            client.claim_and_complete_all()

    # -- scoring -----------------------------------------------------------------------

    def _ground_truth(self) -> GroundTruth:
        truth = GroundTruth(p.participant_id for p in self.pool)
        for tick, __, violated in self._violations:
            truth.add_fact(("violation", tick), violated, time=tick)
        for item in self.system.coordination.worklists.all_items():
            truth.add_fact(
                (
                    "work-item",
                    item.activity.parent_process_instance_id
                    or item.activity.instance_id,
                    item.activity.schema.name,
                ),
                (p.participant_id for p in item.candidates),
                time=item.offered_at,
            )
        return truth

    def _violation_ticks(self) -> Set[int]:
        return {tick for tick, __, ___ in self._violations}

    def _cmi_deliveries(self) -> List[Delivery]:
        """CMI's deliveries: worklist items plus awareness notifications.

        The CMI Client for Participants contains the worklist *and* the
        awareness information viewer (Section 6.1), so CMI's information
        channel is the union of both.
        """
        deliveries: List[Delivery] = list(self._translate_raw(self.worklist_only))
        queue = self.system.awareness.delivery.queue
        ticks = self._violation_ticks()
        for participant in self.pool:
            for notification in queue.pending(participant.participant_id):
                if (
                    notification.schema_name == "AS_InfoRequest"
                    and notification.time in ticks
                ):
                    key: Tuple = ("violation", notification.time)
                else:
                    key = ("cmi", notification.schema_name, notification.time)
                deliveries.append(
                    Delivery(participant.participant_id, key, notification.time)
                )
        return deliveries

    def _translate_raw(self, adapter: BaselineAdapter) -> List[Delivery]:
        """Raw-signal translation: primitive events that carried the
        situation at the right tick are credited with the situation key."""
        ticks = self._violation_ticks()
        work_item_keys = {
            (
                "state-change",
                item.activity.instance_id,
                "Ready",
            ): (
                "work-item",
                item.activity.parent_process_instance_id
                or item.activity.instance_id,
                item.activity.schema.name,
            )
            for item in self.system.coordination.worklists.all_items()
        }
        translated: List[Delivery] = []
        for delivery in adapter.deliveries():
            key = delivery.key
            if (
                key[0] == "context-change"
                and key[2] == TASK_FORCE_DEADLINE
                and delivery.time in ticks
            ):
                key = ("violation", delivery.time)
            elif key in work_item_keys:
                key = work_item_keys[key]
            translated.append(
                Delivery(delivery.participant_id, key, delivery.time)
            )
        return translated

    def _score(self) -> WorkloadResult:
        self.log_analysis.finish()  # flush the trailing poll window
        truth = self._ground_truth()
        cmi = self._cmi_deliveries()
        # The Section 2 do-it-yourself stack: the WfMS worklist plus the
        # custom log-analysis application on top (mirroring how CMI's
        # client combines the worklist with the awareness viewer).
        log_deliveries = list(self.log_analysis.deliveries())
        log_deliveries.extend(self._translate_raw(self.worklist_only))
        mechanisms_raw = [
            ("CMI customized awareness", cmi),
            (
                self.worklist_only.mechanism,
                self._translate_raw(self.worklist_only),
            ),
            (self.monitor_all.mechanism, self._translate_raw(self.monitor_all)),
            (
                self.content_filter.mechanism,
                self._translate_raw(self.content_filter),
            ),
            (self.email.mechanism, self._translate_raw(self.email)),
            ("worklist + " + self.log_analysis.mechanism, log_deliveries),
        ]
        raw_scores = [
            score_mechanism(name, deliveries, truth)
            for name, deliveries in mechanisms_raw
        ]
        # Digested mode: baselines keep their raw keys (no situation
        # credit for undigested primitives); work-item keys still count
        # because a worklist entry *is* digested work information.
        mechanisms_digested = [
            ("CMI customized awareness", cmi),
            (
                self.worklist_only.mechanism,
                list(self.worklist_only.deliveries()),
            ),
            (self.monitor_all.mechanism, list(self.monitor_all.deliveries())),
            (
                self.content_filter.mechanism,
                list(self.content_filter.deliveries()),
            ),
            (self.email.mechanism, list(self.email.deliveries())),
            # The log-analysis app *does* digest: its custom code composed
            # the situation, so its deliveries count in both modes.
            ("worklist + " + self.log_analysis.mechanism, log_deliveries),
        ]
        digested_scores = [
            score_mechanism(name, deliveries, truth)
            for name, deliveries in mechanisms_digested
        ]
        return WorkloadResult(
            config=self.config,
            raw_scores=raw_scores,
            digested_scores=digested_scores,
            violations=len(self._violations),
            work_items=len(self.system.coordination.worklists.all_items()),
            cmi_deliveries=len(cmi),
        )


# ---------------------------------------------------------------------------
# Deterministic shard-partitionable stream (QE11)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardStreamConfig:
    """Knobs of the seeded taskforce-style sharding workload.

    Each task force owns one named context (its affinity key), one
    process instance, one delivery team, and ``windows_per_force``
    awareness windows — a filter -> count -> rising-edge chain per
    window, with spread thresholds so every window fires exactly once
    per run.  Distinct context names per force give the router real keys
    to spread; distinct instance names per chain keep the plan cache
    from collapsing the per-event work the benchmark measures.

    ``force_weights`` skews the stream: force ``i`` emits
    ``events_per_force * force_weights[i]`` events (QE15 uses this to
    make one shard's keys hot).  Thresholds stay per-force fractions of
    that force's own stream length, so every window still fires exactly
    once and :meth:`ShardStreamWorkload.expected_notifications` stays
    exact whatever the skew.
    """

    forces: int = 8
    windows_per_force: int = 4
    events_per_force: int = 200
    members_per_team: int = 2
    seed: int = 23
    process_schema_id: str = "P-ShardTF"
    force_weights: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.forces < 1:
            raise WorkloadError("stream needs at least one task force")
        if self.windows_per_force < 1:
            raise WorkloadError("each force needs at least one window")
        if self.members_per_team < 1:
            raise WorkloadError("each team needs at least one member")
        if self.events_per_force < self.windows_per_force + 1:
            raise WorkloadError(
                "events_per_force must exceed windows_per_force so every "
                "edge threshold is crossed"
            )
        if self.force_weights:
            if len(self.force_weights) != self.forces:
                raise WorkloadError(
                    "force_weights must name one weight per force"
                )
            for weight in self.force_weights:
                if not isinstance(weight, int) or weight < 1:
                    raise WorkloadError(
                        "force weights must be positive integers"
                    )

    def events_for_force(self, force: int) -> int:
        """This force's stream length after applying its weight."""
        if self.force_weights:
            return self.events_per_force * self.force_weights[force]
        return self.events_per_force


class ShardStreamWorkload:
    """A seeded primitive-event stream plus the federation that reads it.

    The stream is pure data (``T_context`` events built directly, no
    CORE engine involved), so the identical workload can drive a serial
    engine, a serial-backend federation, and a process-backend
    federation — QE11's differential leans on that.  ``shard_slice``
    partitions the stream exactly as the
    :class:`~repro.parallel.router.ShardRouter` would: the union of the
    ``n`` slices is the unsharded stream, order preserved within each
    slice.
    """

    def __init__(self, config: Optional[ShardStreamConfig] = None) -> None:
        self.config = config or ShardStreamConfig()

    # -- identifiers -------------------------------------------------------

    def context_name(self, force: int) -> str:
        return f"TaskForceCtx{force:03d}"

    def instance_id(self, force: int) -> str:
        return f"tf-{force:03d}"

    def team_role(self, force: int) -> str:
        return f"team-{force:03d}"

    # -- federation bootstrap ----------------------------------------------

    def blueprint(self) -> FederationBlueprint:
        """Participants, teams, and one spec per force, as pure data."""
        config = self.config
        blueprint = FederationBlueprint()
        for force in range(config.forces):
            member_ids = []
            for member in range(config.members_per_team):
                participant_id = f"u-{force:03d}-{member}"
                blueprint.add_participant(
                    participant_id, f"analyst-{force:03d}-{member}"
                )
                member_ids.append(participant_id)
            blueprint.add_role(self.team_role(force), member_ids)
            blueprint.add_specification(
                ShardSpec(
                    spec_id=f"spec-tf-{force:03d}",
                    process_schema_id=config.process_schema_id,
                    text=self.specification_text(force),
                )
            )
        return blueprint

    def thresholds(self, force: int) -> List[int]:
        """Edge thresholds spread across *force*'s own stream length."""
        config = self.config
        windows = config.windows_per_force
        length = config.events_for_force(force)
        return [
            max(1, (length * (index + 1)) // (windows + 1))
            for index in range(windows)
        ]

    def specification_text(self, force: int) -> str:
        """One window: ``windows_per_force`` filter->count->edge chains."""
        context = self.context_name(force)
        lines: List[str] = []
        for index, threshold in enumerate(self.thresholds(force)):
            lines.append(
                f"d{index} = Filter_context[{context}, Deadline]"
                f"(ContextEvent)"
            )
            lines.append(f"n{index} = Count[](d{index})")
            lines.append(f"g{index} = Edge[>=, {threshold}](n{index})")
            lines.append(
                f'deliver g{index} to {self.team_role(force)} '
                f'as "deadline churn {index}" named AS_TF{force:03d}_{index}'
            )
        return "\n".join(lines)

    # -- the stream --------------------------------------------------------

    def events(self) -> List[Event]:
        """The full seeded stream, strictly time-ordered.

        Fresh :class:`Event` objects per call: producers stamp
        provenance onto the events they emit, so reusing one list across
        runs would leak state between them.
        """
        config = self.config
        rng = random.Random(config.seed)
        remaining = {
            force: config.events_for_force(force)
            for force in range(config.forces)
        }
        counts = {force: 0 for force in range(config.forces)}
        associations = {
            force: frozenset(
                {(config.process_schema_id, self.instance_id(force))}
            )
            for force in range(config.forces)
        }
        events: List[Event] = []
        time = 0
        live = list(range(config.forces))
        while live:
            # A seeded interleave: forces take turns in shuffled rounds,
            # so the global stream genuinely mixes affinity keys (the
            # shape a federation of concurrent task forces produces).
            rng.shuffle(live)
            for force in list(live):
                time += 1
                value = counts[force] + 1
                counts[force] = value
                events.append(
                    Event.trusted(
                        CONTEXT_EVENT_TYPE,
                        {
                            "time": time,
                            "source": "E_context",
                            "contextId": f"ctx-{self.instance_id(force)}",
                            "contextName": self.context_name(force),
                            "processAssociations": associations[force],
                            "fieldName": "Deadline",
                            "oldFieldValue": value - 1,
                            "newFieldValue": value,
                        },
                    )
                )
                remaining[force] -= 1
            live = [force for force in live if remaining[force]]
        return events

    def shard_slice(
        self, shard_count: int, shard: int, router: Optional[ShardRouter] = None
    ) -> List[Event]:
        """The sub-stream shard *shard* of *shard_count* would receive.

        Slices preserve stream order, are pairwise disjoint, and their
        union (merged back by ``time``) is exactly :meth:`events` — the
        property that makes a sharded run comparable to a serial one.
        """
        if not 0 <= shard < shard_count:
            raise WorkloadError(
                f"shard index {shard} out of range for {shard_count} shards"
            )
        active_router = router or ShardRouter()
        return [
            event
            for event in self.events()
            if active_router.shard_for(event, shard_count) == shard
        ]

    # -- ground truth ------------------------------------------------------

    def expected_recognitions(self) -> int:
        """Every edge fires exactly once per force (counts only rise)."""
        return self.config.forces * self.config.windows_per_force

    def expected_notifications(self) -> int:
        return self.expected_recognitions() * self.config.members_per_team
