"""Reproduction of the Section 7 demonstration statistics (TAB7).

The conclusion reports the scale of the DARPA intelligence-gathering
demonstration:

* "the specification of **nine collaboration processes** with more than
  **fifty CMM activities**";
* "CMM activity translation into the commercial WfMS used by the CMI
  system resulted into **a few hundreds of WfMS activities**";
* "we developed **eight awareness specifications** and **thirty basic
  activity scripts** for creating and managing context resources";
* qualitative outcomes: "we discovered no CMM limitations ... the CMI
  system provided all required functionality".

This module regenerates that scale: it assembles nine process schemas (the
epidemic and task-force applications plus two generated response
processes), counts CMM activities, translates each schema to the low-level
WfMS activity count a FlowMark encoding would need, authors eight
awareness specifications, generates thirty context-management scripts, and
runs everything end to end.  The TAB7 benchmark prints paper-vs-measured
rows from the resulting :class:`DemonstrationReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.context import ContextFieldSpec, ContextSchema
from ..core.roles import Participant, RoleRef
from ..core.schema import (
    ActivitySchema,
    ActivityVariable,
    BasicActivitySchema,
    DependencyVariable,
    ProcessActivitySchema,
)
from ..core.metamodel import DependencyType
from ..federation.system import EnactmentSystem
from .epidemic import EpidemicApplication
from .taskforce import TaskForceApplication


def translate_to_wfms_activities(schema: ProcessActivitySchema) -> int:
    """Low-level WfMS activity count of a FlowMark-style encoding.

    The prototype translated CMM activities into IBM FlowMark; a faithful
    encoding needs, per basic CMM activity, the offer/claim/execute/
    complete steps (4 low-level activities), and per (sub)process a start
    and a finish bracket (2), applied recursively.
    """
    total = 2  # the process's own start/finish bracket
    for variable in schema.activity_variables():
        child = variable.activity_schema
        if isinstance(child, ProcessActivitySchema):
            total += translate_to_wfms_activities(child)
        else:
            total += 4
    return total


@dataclass
class ContextScript:
    """One "basic activity script for creating and managing context
    resources" (Section 7): a named sequence of context operations."""

    name: str
    operations: Tuple[str, ...]
    run: Callable[[], None]
    executed: bool = False

    def execute(self) -> None:
        self.run()
        self.executed = True


@dataclass
class DemonstrationReport:
    """Measured statistics, compared against Section 7 in the bench."""

    process_schemas: int
    cmm_activities: int
    wfms_activities: int
    awareness_specifications: int
    context_scripts: int
    scripts_executed: int
    processes_run: int
    processes_completed: int
    notifications_delivered: int
    cmm_limitations: Tuple[str, ...] = ()

    @property
    def all_functionality_provided(self) -> bool:
        """The paper's qualitative outcome, checked mechanically."""
        return (
            not self.cmm_limitations
            and self.processes_completed == self.processes_run
            and self.scripts_executed == self.context_scripts
        )


def _response_process(
    schema_id: str, name: str, steps: int, performer: RoleRef
) -> ProcessActivitySchema:
    """A generated linear response process with *steps* basic activities."""
    schema = ProcessActivitySchema(schema_id, name)
    previous: Optional[str] = None
    for index in range(1, steps + 1):
        step = f"step{index}"
        basic = BasicActivitySchema(
            f"{schema_id}/{step}", f"{name}:{step}", performer=performer
        )
        schema.add_activity_variable(ActivityVariable(step, basic))
        if previous is None:
            schema.mark_entry(step)
        else:
            schema.add_dependency(
                DependencyVariable(
                    f"seq-{index}", DependencyType.SEQUENCE, (previous,), step
                )
            )
        previous = step
    return schema


class DemonstrationBuilder:
    """Assembles and runs the Section 7-scale demonstration."""

    def __init__(self, seed: int = 3) -> None:
        self.seed = seed
        self.system = EnactmentSystem()
        self._participants: List[Participant] = []
        self._scripts: List[ContextScript] = []
        self._setup_participants()
        self._setup_schemas()
        self._setup_awareness()
        self._setup_scripts()

    # -- setup ------------------------------------------------------------------

    def _setup_participants(self) -> None:
        roles = self.system.core.roles
        for role_name in (
            "epidemiologist",
            "media-officer",
            "lab-technician",
            "external-expert",
            "field-agent",
        ):
            roles.define_role(role_name)
        assignments = (
            ("epidemiologist", 4),
            ("media-officer", 1),
            ("lab-technician", 2),
            ("external-expert", 2),
            ("field-agent", 3),
        )
        for role_name, count in assignments:
            for index in range(1, count + 1):
                participant = roles.register_participant(
                    Participant(f"{role_name}-{index}", f"{role_name}-{index}")
                )
                roles.role(role_name).add_member(participant)
                self._participants.append(participant)

    def _setup_schemas(self) -> None:
        # The epidemic application contributes five process schemas, the
        # task-force application two; two generated response processes
        # complete the paper's nine.
        self.epidemic = EpidemicApplication(self.system)
        self.taskforce = TaskForceApplication(self.system)
        agent = RoleRef("field-agent")
        self.containment = _response_process(
            "P-Containment", "containment-response", 12, agent
        )
        self.communication = _response_process(
            "P-Communication", "communication-response", 12, agent
        )
        for schema in (self.containment, self.communication):
            self.system.core.register_schema(schema)

    def process_schemas(self) -> Tuple[ProcessActivitySchema, ...]:
        return (
            self.epidemic.patient_tf,
            self.epidemic.hospital_tf,
            self.epidemic.vector_tf,
            self.epidemic.media_tf,
            self.epidemic.info_gathering,
            self.taskforce.task_force_schema,
            self.taskforce.info_request_schema,
            self.containment,
            self.communication,
        )

    def _setup_awareness(self) -> None:
        """Author the paper's eight awareness specifications."""
        self.epidemic.install_awareness()  # AS_PositiveLab
        self.taskforce.install_awareness()  # AS_InfoRequest
        # Six completion-monitoring specifications over the remaining
        # process schemas: notify epidemiologists when the entry activity
        # of the process completes.
        self._spec_count = 2
        monitored = (
            self.epidemic.patient_tf,
            self.epidemic.hospital_tf,
            self.epidemic.vector_tf,
            self.epidemic.media_tf,
            self.containment,
            self.communication,
        )
        for schema in monitored:
            window = self.system.awareness.create_window(schema.schema_id)
            entry = schema.entry_activities[0]
            fired = window.place(
                "Filter_activity",
                entry,
                None,
                {"Completed"},
                instance_name=f"completed-{entry}",
            )
            window.connect(window.source("ActivityEvent"), fired, 0)
            window.output(
                fired,
                delivery_role=RoleRef("epidemiologist"),
                assignment_name="identity",
                user_description=f"{schema.name}: {entry} completed",
                schema_name=f"AS_{schema.name}",
            )
            self.system.awareness.deploy(window)
            self._spec_count += 1

    def _setup_scripts(self) -> None:
        """Generate the thirty context-management scripts."""
        core = self.system.core
        script_context = ContextSchema(
            "ScriptContext",
            [
                ContextFieldSpec("status", "str"),
                ContextFieldSpec("priority", "int"),
                ContextFieldSpec("owner-role", "role"),
            ],
        )
        holder_schema = ProcessActivitySchema("P-ScriptHolder", "script-holder")
        holder_schema.add_context_schema(script_context)
        holder_basic = BasicActivitySchema("B-ScriptNoop", "noop")
        holder_schema.add_activity_variable(
            ActivityVariable("noop", holder_basic)
        )
        holder_schema.mark_entry("noop")
        core.register_schema(holder_basic)
        core.register_schema(holder_schema)
        self._script_holder_schema = holder_schema

        for index in range(1, 31):
            name = f"script-{index:02d}"
            owner = self._participants[index % len(self._participants)]

            def run(index: int = index, owner: Participant = owner) -> None:
                holder = self.system.coordination.start_process(
                    self._script_holder_schema
                )
                ref = holder.context("ScriptContext")
                ref.set("status", "created")
                ref.set("priority", index)
                core.create_scoped_role(ref, "owner-role", (owner,))
                ref.set("status", "managed")
                if index % 3 == 0:
                    core.destroy_context(ref)
                noop = holder.child("noop")
                core.change_state(noop, "Running")
                self.system.coordination.complete_activity(noop)

            self._scripts.append(
                ContextScript(
                    name=name,
                    operations=(
                        "create-context",
                        "set-status",
                        "set-priority",
                        "create-scoped-role",
                        "update-status",
                        "maybe-destroy",
                    ),
                    run=run,
                )
            )

    # -- execution ------------------------------------------------------------------

    def _drain_all(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for participant in self._participants:
                client = self.system.participant_client(participant)
                for item in [
                    i for i in client.work_items() if i.claimed_by is None
                ]:
                    client.claim(item)
                    client.complete(item)
                    progressed = True

    def run(self) -> DemonstrationReport:
        """Run every process and script; return the measured statistics."""
        limitations: List[str] = []
        processes_run = 0
        completed = 0

        # One instance of each top-level collaboration process.
        top_level = (
            self.epidemic.info_gathering,
            self.taskforce.task_force_schema,
            self.containment,
            self.communication,
        )
        instances = []
        for schema in top_level:
            try:
                if schema is self.epidemic.info_gathering:
                    technicians = self.system.core.roles.resolve_global(
                        "lab-technician"
                    )
                    instance = self.epidemic.start(
                        "region-1", tuple(sorted(technicians, key=lambda p: p.participant_id))
                    )
                else:
                    instance = self.system.coordination.start_process(schema)
                instances.append(instance)
                processes_run += 1
            except Exception as exc:  # a limitation the paper did not find
                limitations.append(f"{schema.name}: {exc}")
        self._drain_all()

        # Exercise the task-force awareness path once.
        epidemiologists = sorted(
            self.system.core.roles.resolve_global("epidemiologist"),
            key=lambda p: p.participant_id,
        )
        task_force = self.taskforce.create_task_force(
            epidemiologists[0], epidemiologists[:3], deadline=500
        )
        processes_run += 1
        instances.append(task_force.process)
        request = self.taskforce.request_information(
            task_force, epidemiologists[1], deadline=450
        )
        processes_run += 1
        instances.append(request.process)
        self.taskforce.change_task_force_deadline(task_force, 400)
        self.taskforce.complete_request(request)
        self._drain_all()

        for script in self._scripts:
            script.execute()
        self._drain_all()

        for instance in instances:
            if instance.is_closed():
                completed += 1

        cmm_activities = sum(
            len(schema.activity_variables())
            for schema in self.process_schemas()
        )
        wfms_activities = sum(
            translate_to_wfms_activities(schema)
            for schema in self.process_schemas()
        )
        return DemonstrationReport(
            process_schemas=len(self.process_schemas()),
            cmm_activities=cmm_activities,
            wfms_activities=wfms_activities,
            awareness_specifications=self._spec_count,
            context_scripts=len(self._scripts),
            scripts_executed=sum(1 for s in self._scripts if s.executed),
            processes_run=processes_run,
            processes_completed=completed,
            notifications_delivered=self.system.awareness.delivery.delivered,
            cmm_limitations=tuple(limitations),
        )


def build_demonstration(seed: int = 3) -> DemonstrationBuilder:
    """Construct the Section 7-scale demonstration system."""
    return DemonstrationBuilder(seed)
