"""Crisis-management workloads (Sections 1, 2, 5.4, 7).

The paper motivates CMI with the crisis-management domain; this package
contains executable versions of its scenarios:

* :mod:`repro.workloads.taskforce` — the Section 5/5.4 task-force +
  information-request application with the ``AS_InfoRequest``
  deadline-violation awareness schema;
* :mod:`repro.workloads.epidemic` — the Figure 1 epidemic
  information-gathering process, with its optional activities and
  participant decisions;
* :mod:`repro.workloads.generator` — a parameterized synthetic crisis
  workload with ground-truth relevance labels for the QE1 overload
  comparison;
* :mod:`repro.workloads.demonstration` — a generator reproducing the
  scale of the Section 7 DARPA demonstration (nine processes, fifty-plus
  activities, eight awareness specifications, thirty context scripts).
"""

from .demonstration import DemonstrationReport, build_demonstration
from .epidemic import EpidemicScenario, build_epidemic_application
from .generator import CrisisWorkload, WorkloadConfig
from .taskforce import TaskForceApplication

__all__ = [
    "CrisisWorkload",
    "DemonstrationReport",
    "EpidemicScenario",
    "TaskForceApplication",
    "WorkloadConfig",
    "build_demonstration",
    "build_epidemic_application",
]
