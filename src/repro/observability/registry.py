"""Metrics registry: named counters, gauges, and histograms with labels.

The Figure 5 pipeline previously reported its health through hand-rolled
``collections.Counter`` dicts and bare ``int`` attributes scattered across
the bus, the producers, and the engines.  This module replaces them with a
single dependency-free instrument model in the spirit of the Prometheus
client (SNIPPETS.md's observability exemplars), scoped per
:class:`MetricsRegistry` so every :class:`~repro.federation.system.EnactmentSystem`
owns its own isolated metric space while standalone components fall back to
a private or the process-wide default registry.

Three instrument kinds cover the pipeline's needs:

* :class:`Counter` — monotonically increasing totals (events published,
  notifications delivered);
* :class:`Gauge` — settable point-in-time values, including *callback*
  gauges evaluated lazily at collection time (``instances_total``);
* :class:`Histogram` — fixed-bucket distributions (per-stage latency).

Instruments support a fixed tuple of label names declared at registration;
each distinct label-value tuple is one *series*.  Series creation is
bounded (:data:`DEFAULT_MAX_SERIES`) so a buggy caller cannot turn the
registry into an unbounded memory leak — exceeding the bound raises
:class:`MetricsError` rather than silently dropping data.

All mutating operations are thread-safe (one lock per instrument), and
registries render to both a Prometheus-style text exposition and plain
JSON-able dicts.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    cast,
)

from ..errors import ReproError

#: Upper bound on distinct label-value tuples per instrument.
DEFAULT_MAX_SERIES = 1024

LabelValues = Tuple[str, ...]


class MetricsError(ReproError):
    """An instrument was misused (type clash, label mismatch, cardinality)."""


def _check_labels(
    name: str, label_names: Tuple[str, ...], labels: LabelValues
) -> None:
    if len(labels) != len(label_names):
        raise MetricsError(
            f"instrument {name!r} declares labels {label_names}, "
            f"got values {labels!r}"
        )


class Instrument:
    """Common state of one named instrument: labels, series, lock."""

    kind: str = "untyped"

    def __init__(
        self,
        name: str,
        description: str = "",
        label_names: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        self.name = name
        self.description = description
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self.max_series = max_series
        self._lock = threading.Lock()

    def _check_capacity(self, series: Mapping[LabelValues, object]) -> None:
        if len(series) >= self.max_series:
            raise MetricsError(
                f"instrument {self.name!r} exceeded its label cardinality "
                f"bound ({self.max_series} series); check the labels passed "
                f"by the caller"
            )


class Counter(Instrument):
    """A monotonically increasing per-series total."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        description: str = "",
        label_names: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        super().__init__(name, description, label_names, max_series)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, labels: LabelValues = ()) -> None:
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (amount {amount})"
            )
        _check_labels(self.name, self.label_names, labels)
        with self._lock:
            values = self._values
            if labels not in values:
                self._check_capacity(values)
                values[labels] = 0.0
            values[labels] += amount

    def child(self, labels: LabelValues = ()) -> "BoundCounter":
        """A pre-bound series handle for hot paths (one dict lookup saved)."""
        _check_labels(self.name, self.label_names, labels)
        with self._lock:
            if labels not in self._values:
                self._check_capacity(self._values)
                self._values[labels] = 0.0
        return BoundCounter(self, labels)

    def value(self, labels: LabelValues = ()) -> float:
        _check_labels(self.name, self.label_names, labels)
        with self._lock:
            return self._values.get(labels, 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def series(self) -> Dict[LabelValues, float]:
        with self._lock:
            return dict(self._values)


class BoundCounter:
    """One counter series bound ahead of time; ``inc`` is the hot path."""

    __slots__ = ("_counter", "_labels")

    def __init__(self, counter: Counter, labels: LabelValues) -> None:
        self._counter = counter
        self._labels = labels

    def inc(self, amount: float = 1.0) -> None:
        counter = self._counter
        with counter._lock:
            counter._values[self._labels] += amount

    def value(self) -> float:
        return self._counter.value(self._labels)


class Gauge(Instrument):
    """A settable point-in-time value per series."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        description: str = "",
        label_names: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        super().__init__(name, description, label_names, max_series)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, labels: LabelValues = ()) -> None:
        _check_labels(self.name, self.label_names, labels)
        with self._lock:
            if labels not in self._values:
                self._check_capacity(self._values)
            self._values[labels] = value

    def inc(self, amount: float = 1.0, labels: LabelValues = ()) -> None:
        _check_labels(self.name, self.label_names, labels)
        with self._lock:
            if labels not in self._values:
                self._check_capacity(self._values)
                self._values[labels] = 0.0
            self._values[labels] += amount

    def dec(self, amount: float = 1.0, labels: LabelValues = ()) -> None:
        self.inc(-amount, labels)

    def value(self, labels: LabelValues = ()) -> float:
        _check_labels(self.name, self.label_names, labels)
        with self._lock:
            return self._values.get(labels, 0.0)

    def series(self) -> Dict[LabelValues, float]:
        with self._lock:
            return dict(self._values)


class CallbackGauge(Instrument):
    """A gauge whose value is computed by a callable at collection time.

    This is how derived pipeline statistics (``composites_recognized`` as a
    sum over live detectors, ``instances_total`` from the CORE engine) are
    exposed without double bookkeeping on the hot path.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        callback: Callable[[], float],
        description: str = "",
    ) -> None:
        super().__init__(name, description, ())
        self._callback = callback

    def value(self, labels: LabelValues = ()) -> float:
        _check_labels(self.name, self.label_names, labels)
        return float(self._callback())

    def series(self) -> Dict[LabelValues, float]:
        return {(): self.value()}


class MultiCallbackGauge(Instrument):
    """A labelled gauge whose series are computed by one callable.

    The callback returns ``{label_values: value}`` for every live series
    at collection time — how per-participant worklist depths are exposed
    without a registry write on every offer/claim/complete.  The declared
    ``max_series`` bound applies to the callback's result.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        callback: Callable[[], Mapping[LabelValues, float]],
        description: str = "",
        label_names: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        super().__init__(name, description, label_names, max_series)
        self._callback = callback

    def value(self, labels: LabelValues = ()) -> float:
        _check_labels(self.name, self.label_names, labels)
        return float(self.series().get(labels, 0.0))

    def series(self) -> Dict[LabelValues, float]:
        computed = dict(self._callback())
        if len(computed) > self.max_series:
            raise MetricsError(
                f"multi-callback gauge {self.name!r} computed "
                f"{len(computed)} series, exceeding its cardinality bound "
                f"({self.max_series})"
            )
        return {labels: float(value) for labels, value in computed.items()}


class HistogramSeries:
    """Bucket counts, sum, and count for one label-value tuple."""

    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        #: Per-bucket (non-cumulative) observation counts; the final entry
        #: is the overflow bucket (observations above the last edge).
        self.bucket_counts: List[int] = [0] * (n_buckets + 1)
        self.total = 0.0
        self.count = 0


class Histogram(Instrument):
    """Fixed-bucket distribution.

    ``buckets`` are the upper edges, ascending; an observation ``v`` lands
    in the first bucket whose edge satisfies ``v <= edge`` (Prometheus
    ``le`` semantics), or in the implicit overflow (+Inf) bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float],
        description: str = "",
        label_names: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        super().__init__(name, description, label_names, max_series)
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise MetricsError(f"histogram {name!r} requires at least one bucket")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise MetricsError(
                f"histogram {name!r} bucket edges must be strictly "
                f"ascending, got {edges}"
            )
        self.buckets = edges
        self._series: Dict[LabelValues, HistogramSeries] = {}

    def observe(self, value: float, labels: LabelValues = ()) -> None:
        _check_labels(self.name, self.label_names, labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(labels)
            if series is None:
                self._check_capacity(self._series)
                series = self._series[labels] = HistogramSeries(len(self.buckets))
            series.bucket_counts[index] += 1
            series.total += value
            series.count += 1

    def child(self, labels: LabelValues = ()) -> "BoundHistogram":
        """A pre-bound series handle for hot paths."""
        _check_labels(self.name, self.label_names, labels)
        with self._lock:
            if labels not in self._series:
                self._check_capacity(self._series)
                self._series[labels] = HistogramSeries(len(self.buckets))
        return BoundHistogram(self, labels)

    def snapshot(
        self, labels: LabelValues = ()
    ) -> Tuple[Tuple[int, ...], float, int]:
        """``(bucket_counts, sum, count)`` for one series (zeros if unseen)."""
        _check_labels(self.name, self.label_names, labels)
        with self._lock:
            series = self._series.get(labels)
            if series is None:
                return (0,) * (len(self.buckets) + 1), 0.0, 0
            return tuple(series.bucket_counts), series.total, series.count

    def cumulative(self, labels: LabelValues = ()) -> Tuple[int, ...]:
        """Prometheus-style cumulative ``le`` counts (including +Inf)."""
        counts, __, ___ = self.snapshot(labels)
        out: List[int] = []
        running = 0
        for count in counts:
            running += count
            out.append(running)
        return tuple(out)

    def series_labels(self) -> Tuple[LabelValues, ...]:
        with self._lock:
            return tuple(self._series)

    def add_counts(
        self,
        labels: LabelValues,
        bucket_counts: Sequence[int],
        total: float,
        count: int,
    ) -> None:
        """Fold pre-aggregated counts into one series (snapshot merging).

        ``bucket_counts`` must match this histogram's bucket layout
        (non-cumulative, with the trailing overflow bucket).
        """
        _check_labels(self.name, self.label_names, labels)
        if len(bucket_counts) != len(self.buckets) + 1:
            raise MetricsError(
                f"histogram {self.name!r} has {len(self.buckets) + 1} "
                f"buckets (incl. overflow), got {len(bucket_counts)} counts"
            )
        with self._lock:
            series = self._series.get(labels)
            if series is None:
                self._check_capacity(self._series)
                series = self._series[labels] = HistogramSeries(len(self.buckets))
            for index, increment in enumerate(bucket_counts):
                series.bucket_counts[index] += int(increment)
            series.total += total
            series.count += count

    def quantile(self, q: float, labels: LabelValues = ()) -> float:
        """Estimate the *q*-quantile (0..1) from the bucket counts.

        Linear interpolation within the winning bucket, the standard
        fixed-bucket estimator; observations in the overflow bucket clamp
        to the last finite edge.  Returns 0.0 for an empty series.
        """
        counts, __, count = self.snapshot(labels)
        if not count:
            return 0.0
        rank = q * count
        running = 0.0
        lower = 0.0
        for edge, bucket in zip(self.buckets, counts):
            if bucket and running + bucket >= rank:
                fraction = (rank - running) / bucket
                return lower + (edge - lower) * min(1.0, max(0.0, fraction))
            running += bucket
            lower = edge
        return self.buckets[-1]


class BoundHistogram:
    """One histogram series bound ahead of time; ``observe`` is hot."""

    __slots__ = ("_histogram", "_series", "_buckets")

    def __init__(self, histogram: Histogram, labels: LabelValues) -> None:
        self._histogram = histogram
        self._series = histogram._series[labels]
        self._buckets = histogram.buckets

    def observe(self, value: float) -> None:
        index = bisect_left(self._buckets, value)
        series = self._series
        with self._histogram._lock:
            series.bucket_counts[index] += 1
            series.total += value
            series.count += 1

    def observe_relaxed(self, value: float) -> None:
        """Lock-free observe for series with a single writer thread.

        Each mutation below is one atomic bytecode-level operation under
        the GIL, so the series never corrupts; a concurrent snapshot may
        see a bucket count at most one observation ahead of ``count``,
        which monitoring reads tolerate.  Multi-writer series must use
        :meth:`observe`.
        """
        series = self._series
        series.bucket_counts[bisect_left(self._buckets, value)] += 1
        series.total += value
        series.count += 1


class MetricsRegistry:
    """A named collection of instruments with get-or-create semantics."""

    def __init__(self, max_series: int = DEFAULT_MAX_SERIES) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._max_series = max_series
        self._lock = threading.Lock()

    # -- registration ------------------------------------------------------

    def _get_or_create(self, name: str, factory: Callable[[], Instrument]) -> Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(
        self,
        name: str,
        description: str = "",
        label_names: Sequence[str] = (),
    ) -> Counter:
        instrument = self._get_or_create(
            name,
            lambda: Counter(name, description, label_names, self._max_series),
        )
        if not isinstance(instrument, Counter):
            raise MetricsError(
                f"instrument {name!r} is a {instrument.kind}, not a counter"
            )
        if instrument.label_names != tuple(label_names):
            raise MetricsError(
                f"counter {name!r} was registered with labels "
                f"{instrument.label_names}, got {tuple(label_names)}"
            )
        return instrument

    def gauge(
        self,
        name: str,
        description: str = "",
        label_names: Sequence[str] = (),
    ) -> Gauge:
        instrument = self._get_or_create(
            name,
            lambda: Gauge(name, description, label_names, self._max_series),
        )
        if not isinstance(instrument, Gauge):
            raise MetricsError(
                f"instrument {name!r} is a {instrument.kind}, not a gauge"
            )
        return instrument

    def callback_gauge(
        self,
        name: str,
        callback: Callable[[], float],
        description: str = "",
    ) -> CallbackGauge:
        """Register (or replace) a collection-time computed gauge."""
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None and not isinstance(existing, CallbackGauge):
                raise MetricsError(
                    f"instrument {name!r} is a {existing.kind}, not a "
                    f"callback gauge"
                )
            instrument = CallbackGauge(name, callback, description)
            self._instruments[name] = instrument
            return instrument

    def multi_callback_gauge(
        self,
        name: str,
        callback: Callable[[], Mapping[LabelValues, float]],
        description: str = "",
        label_names: Sequence[str] = (),
    ) -> MultiCallbackGauge:
        """Register (or replace) a labelled collection-time computed gauge."""
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None and not isinstance(
                existing, MultiCallbackGauge
            ):
                raise MetricsError(
                    f"instrument {name!r} is a {existing.kind}, not a "
                    f"multi-callback gauge"
                )
            instrument = MultiCallbackGauge(
                name, callback, description, label_names, self._max_series
            )
            self._instruments[name] = instrument
            return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float],
        description: str = "",
        label_names: Sequence[str] = (),
    ) -> Histogram:
        instrument = self._get_or_create(
            name,
            lambda: Histogram(
                name, buckets, description, label_names, self._max_series
            ),
        )
        if not isinstance(instrument, Histogram):
            raise MetricsError(
                f"instrument {name!r} is a {instrument.kind}, not a histogram"
            )
        return instrument

    # -- access ------------------------------------------------------------

    def get(self, name: str) -> Optional[Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._instruments))

    def value(self, name: str, labels: LabelValues = ()) -> float:
        """The current value of one counter/gauge series (0.0 if absent)."""
        instrument = self.get(name)
        if instrument is None:
            return 0.0
        if isinstance(
            instrument, (Counter, Gauge, CallbackGauge, MultiCallbackGauge)
        ):
            return instrument.value(labels)
        raise MetricsError(
            f"instrument {name!r} is a {instrument.kind}; use as_dict() "
            f"for histogram series"
        )

    def unregister(self, name: str) -> None:
        with self._lock:
            self._instruments.pop(name, None)

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived processes)."""
        with self._lock:
            self._instruments.clear()

    # -- rendering ---------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """A JSON-able snapshot of every instrument and series."""
        out: Dict[str, object] = {}
        for name in self.names():
            instrument = self.get(name)
            if instrument is None:  # pragma: no cover - racy unregister
                continue
            if isinstance(instrument, Histogram):
                series_out = []
                for labels in instrument.series_labels():
                    counts, total, count = instrument.snapshot(labels)
                    series_out.append(
                        {
                            "labels": dict(
                                zip(instrument.label_names, labels)
                            ),
                            "buckets": list(instrument.buckets),
                            "counts": list(counts),
                            "sum": total,
                            "count": count,
                        }
                    )
                out[name] = {
                    "kind": instrument.kind,
                    "description": instrument.description,
                    "series": series_out,
                }
            elif isinstance(
                instrument,
                (Counter, Gauge, CallbackGauge, MultiCallbackGauge),
            ):
                out[name] = {
                    "kind": instrument.kind,
                    "description": instrument.description,
                    "series": [
                        {
                            "labels": dict(
                                zip(instrument.label_names, labels)
                            ),
                            "value": value,
                        }
                        for labels, value in sorted(
                            instrument.series().items()
                        )
                    ],
                }
        return out

    def render_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    # -- snapshot codec ----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A lossless, JSON-able snapshot of every instrument.

        Unlike :meth:`as_dict` (a human-facing rendering), the snapshot
        preserves label *tuples*, bucket boundaries, and per-bucket counts
        exactly, so :meth:`merge` on another registry reproduces every
        series bit-for-bit.  Callback gauges are captured at their
        collection-time values and decode as plain gauges — the callable
        itself cannot cross a process boundary.
        """
        out: Dict[str, object] = {}
        for name in self.names():
            instrument = self.get(name)
            if instrument is None:  # pragma: no cover - racy unregister
                continue
            entry: Dict[str, object] = {
                "kind": instrument.kind,
                "description": instrument.description,
                "label_names": list(instrument.label_names),
            }
            if isinstance(instrument, Histogram):
                entry["buckets"] = list(instrument.buckets)
                entry["series"] = [
                    [list(labels), list(counts), total, count]
                    for labels in instrument.series_labels()
                    for counts, total, count in (instrument.snapshot(labels),)
                ]
            elif isinstance(
                instrument,
                (Counter, Gauge, CallbackGauge, MultiCallbackGauge),
            ):
                entry["series"] = [
                    [list(labels), value]
                    for labels, value in sorted(instrument.series().items())
                ]
            else:  # pragma: no cover - no other kinds exist
                continue
            out[name] = entry
        return out

    def merge(
        self, snapshot: Mapping[str, object], shard: Optional[str] = None
    ) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters accumulate, gauges overwrite, histogram bucket counts
        add.  With ``shard`` set, every instrument gains a leading
        ``shard`` label so series from different shards stay distinct —
        the federation-aggregation path.  Bucket-layout disagreements
        raise :class:`MetricsError` rather than merging garbage.
        """
        prefix_names = ("shard",) if shard is not None else ()
        prefix_values = (shard,) if shard is not None else ()
        for name, raw in snapshot.items():
            entry = dict(cast(Mapping[str, object], raw))
            kind = entry.get("kind")
            description = str(entry.get("description", ""))
            label_names = prefix_names + tuple(
                str(label)
                for label in cast(Sequence[object], entry.get("label_names", ()))
            )
            series = cast(Sequence[Sequence[object]], entry.get("series", ()))
            if kind == "counter":
                counter = self.counter(name, description, label_names)
                for labels_raw, value in cast(
                    Sequence[Tuple[Sequence[object], float]], series
                ):
                    labels = prefix_values + tuple(
                        str(part) for part in labels_raw
                    )
                    counter.inc(float(value), labels)
            elif kind == "gauge":
                gauge = self.gauge(name, description, label_names)
                for labels_raw, value in cast(
                    Sequence[Tuple[Sequence[object], float]], series
                ):
                    labels = prefix_values + tuple(
                        str(part) for part in labels_raw
                    )
                    gauge.set(float(value), labels)
            elif kind == "histogram":
                buckets = [
                    float(edge)
                    for edge in cast(Sequence[object], entry.get("buckets", ()))
                ]
                histogram = self.histogram(
                    name, buckets, description, label_names
                )
                if list(histogram.buckets) != buckets:
                    raise MetricsError(
                        f"histogram {name!r} bucket layout mismatch on "
                        f"merge: registry has {histogram.buckets}, snapshot "
                        f"has {tuple(buckets)}"
                    )
                for row in series:
                    labels_raw, counts, total, count = (
                        cast(Sequence[object], row[0]),
                        cast(Sequence[int], row[1]),
                        float(cast(float, row[2])),
                        int(cast(int, row[3])),
                    )
                    labels = prefix_values + tuple(
                        str(part) for part in labels_raw
                    )
                    histogram.add_counts(labels, counts, total, count)
            else:
                raise MetricsError(
                    f"snapshot entry {name!r} has unknown kind {kind!r}"
                )

    def render_text(self) -> str:
        """Prometheus-style text exposition (counters, gauges, histograms)."""
        lines: List[str] = []
        for name in self.names():
            instrument = self.get(name)
            if instrument is None:  # pragma: no cover - racy unregister
                continue
            if instrument.description:
                lines.append(f"# HELP {name} {instrument.description}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                for labels in instrument.series_labels():
                    cumulative = instrument.cumulative(labels)
                    __, total, count = instrument.snapshot(labels)
                    base = _render_labels(instrument.label_names, labels)
                    for edge, running in zip(
                        instrument.buckets, cumulative
                    ):
                        extra = _render_labels(
                            instrument.label_names + ("le",),
                            labels + (f"{edge:g}",),
                        )
                        lines.append(f"{name}_bucket{extra} {running}")
                    extra = _render_labels(
                        instrument.label_names + ("le",), labels + ("+Inf",)
                    )
                    lines.append(f"{name}_bucket{extra} {cumulative[-1]}")
                    lines.append(f"{name}_sum{base} {total:g}")
                    lines.append(f"{name}_count{base} {count}")
            elif isinstance(
                instrument,
                (Counter, Gauge, CallbackGauge, MultiCallbackGauge),
            ):
                for labels, value in sorted(instrument.series().items()):
                    rendered = _render_labels(instrument.label_names, labels)
                    lines.append(f"{name}{rendered} {value:g}")
        return "\n".join(lines)


def _render_labels(names: Tuple[str, ...], values: LabelValues) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{label}="{value}"' for label, value in zip(names, values)
    )
    return "{" + pairs + "}"


#: The process-wide default registry, for components used standalone and
#: for the instrumentation plane's stage-latency histograms.
_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT_REGISTRY


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous
