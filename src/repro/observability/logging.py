"""Structured logging plane: JSON-lines records from the pipeline.

The metrics registry answers "how much"; traces answer "how long"; this
module answers "what happened" — discrete, machine-parseable records from
the bus/engine/delivery error paths and the health-alert paths, each
correlated with the component that emitted it, the owning system, the
logical clock tick, and (when tracing is on) the in-flight trace id.

The plane follows the same zero-cost-when-disabled contract as the
:class:`~repro.observability.trace.Tracer`: hot paths hold a reference to
the process-wide :data:`STRUCTURED_LOG` and guard every emission with
``if _LOG.enabled:``, so the disabled cost is one attribute load and a
branch.  When enabled, records land in a bounded in-memory ring (the
flight recorder read by tests and the CLI) and, optionally, in a *sink* —
any ``callable(str)`` or writable text stream — as one JSON object per
line, the standard shape log shippers ingest.

Typical usage::

    from repro.observability.logging import logging_enabled, structured_log

    with logging_enabled(sys.stderr):
        ...drive the pipeline...
    for record in structured_log().records(component="bus"):
        print(record["event"], record.get("error"))
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    IO,
    Iterable,
    Iterator,
    Optional,
    Tuple,
    Union,
)

from .trace import Tracer

#: Default capacity of the in-memory record ring buffer.
DEFAULT_MAX_RECORDS = 2048

#: A sink accepts one rendered JSON line (without the trailing newline).
Sink = Callable[[str], None]


class StructuredLog:
    """Process-wide JSON-lines logger with an in-memory ring buffer.

    Mirrors the :class:`~repro.observability.Instrumentation` contract:
    one ``enabled`` flag that callers check before building a record, so
    the disabled hot-path cost is a single attribute load.
    """

    __slots__ = (
        "enabled",
        "max_records",
        "_records",
        "_sink",
        "_tracer",
        "_seq",
    )

    def __init__(self, max_records: int = DEFAULT_MAX_RECORDS) -> None:
        self.enabled = False
        self.max_records = max_records
        self._records: Deque[Dict[str, Any]] = deque(maxlen=max_records)
        self._sink: Optional[Sink] = None
        self._tracer: Optional[Tracer] = None
        #: Monotonic emission counter; each record is stamped with it so a
        #: drain cursor (and recovery's high-watermark) can tell records
        #: apart even after the ring has wrapped.
        self._seq = 0

    # -- wiring ------------------------------------------------------------

    def bind_tracer(self, tracer: Tracer) -> None:
        """Correlate records with *tracer*'s in-flight trace ids."""
        self._tracer = tracer

    def set_sink(self, sink: Union[Sink, IO[str], None]) -> None:
        """Mirror records to *sink*: a ``callable(line)``, a writable text
        stream (each record becomes one line), or ``None`` to detach."""
        if sink is None or callable(sink):
            self._sink = sink
        else:
            stream: IO[str] = sink
            self._sink = lambda line: stream.write(line + "\n")

    # -- emission ----------------------------------------------------------

    def emit(
        self,
        component: str,
        event: str,
        level: str = "info",
        system: Optional[str] = None,
        tick: Optional[int] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Record one structured event; returns the record dict.

        Callers must guard with ``if log.enabled:`` — this method always
        records.  ``component`` names the emitting pipeline agent (``bus``,
        ``delivery``, ``health``...), ``event`` is a stable snake_case
        event name, and arbitrary keyword fields carry the payload
        (non-JSON-able values are stringified at render time).
        """
        record: Dict[str, Any] = {
            "level": level,
            "component": component,
            "event": event,
        }
        if system is not None:
            record["system"] = system
        if tick is not None:
            record["tick"] = tick
        tracer = self._tracer
        if tracer is not None:
            trace_id = tracer.current_trace_id
            if trace_id is not None:
                record["trace"] = trace_id
                record["span"] = tracer.active_depth
        if fields:
            record.update(fields)
        self._seq += 1
        record["_seq"] = self._seq
        self._records.append(record)
        sink = self._sink
        if sink is not None:
            sink(render_record(record))
        return record

    # -- inspection --------------------------------------------------------

    def records(
        self,
        component: Optional[str] = None,
        event: Optional[str] = None,
    ) -> Tuple[Dict[str, Any], ...]:
        """Recorded events, oldest first, optionally filtered."""
        out = []
        for record in self._records:
            if component is not None and record["component"] != component:
                continue
            if event is not None and record["event"] != event:
                continue
            out.append(record)
        return tuple(out)

    @property
    def seq(self) -> int:
        """The sequence number of the most recently emitted record."""
        return self._seq

    def set_seq(self, value: int) -> None:
        """Reset the emission counter (snapshot restore only).

        A worker restored from a durability snapshot continues numbering
        from the snapshot's ``log_seq``, so records re-emitted during
        journal replay collide exactly with the sequence numbers already
        shipped — the facade-side watermark drops them as duplicates.
        """
        self._seq = value

    def drain(
        self, after_seq: int
    ) -> Tuple[Tuple[Dict[str, Any], ...], int, int]:
        """Records emitted after *after_seq*: ``(records, dropped, cursor)``.

        ``dropped`` counts records that were emitted since the cursor but
        already pushed out of the bounded ring — the shipper's honest
        loss accounting.  ``cursor`` is the new high-watermark to pass to
        the next drain.  Never blocks and never copies records.
        """
        available = tuple(
            record
            for record in self._records
            if record.get("_seq", 0) > after_seq
        )
        emitted_since = max(0, self._seq - after_seq)
        dropped = emitted_since - len(available)
        return available, max(0, dropped), self._seq

    def render_lines(self) -> str:
        """Every buffered record as JSON lines (the sink format)."""
        return "\n".join(render_record(record) for record in self._records)

    def clear(self) -> None:
        """Drop buffered records (flag and sink unchanged).

        The emission counter is *not* reset: drain cursors held by
        shippers must stay valid across a clear.
        """
        self._records.clear()


def render_record(record: Dict[str, Any]) -> str:
    """One record as a canonical JSON line (sorted keys, repr fallback)."""
    return json.dumps(record, sort_keys=True, default=repr)


#: Default capacity of the merged federation log view.
DEFAULT_MAX_MERGED_RECORDS = 4096


class FederationLogView:
    """The facade-side merge of every shard's shipped log records.

    Workers drain their ring buffers over the frame protocol (see
    :meth:`StructuredLog.drain`); the facade feeds each shipment in here
    tagged with its shard id.  Reads come back ordered by
    ``(tick, shard, seq)`` — logical time first, so interleaved shards
    read as one coherent story; shard then seq break ties
    deterministically.  The view is itself a bounded ring with the same
    honest-loss accounting as the shippers: per-shard ``dropped`` counts
    accumulate what the workers lost, ``evicted`` counts what this ring
    pushed out.
    """

    def __init__(
        self, max_records: int = DEFAULT_MAX_MERGED_RECORDS
    ) -> None:
        self.max_records = max_records
        self._records: Deque[Dict[str, Any]] = deque(maxlen=max_records)
        self._dropped: Dict[int, int] = {}
        self.evicted = 0

    def extend(
        self,
        shard: int,
        records: Iterable[Dict[str, Any]],
        dropped: int = 0,
    ) -> None:
        """Ingest one shipment from *shard* (records keep their seq)."""
        ring = self._records
        for record in records:
            tagged = dict(record)
            tagged["shard"] = shard
            if len(ring) == self.max_records:
                self.evicted += 1
            ring.append(tagged)
        if dropped:
            self._dropped[shard] = self._dropped.get(shard, 0) + dropped

    def records(
        self,
        component: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> Tuple[Dict[str, Any], ...]:
        """Merged records ordered by ``(tick, shard, seq)``."""
        out = [
            record
            for record in self._records
            if (component is None or record.get("component") == component)
            and (shard is None or record.get("shard") == shard)
        ]
        out.sort(
            key=lambda record: (
                record.get("tick") or 0,
                record.get("shard", 0),
                record.get("_seq", 0),
            )
        )
        return tuple(out)

    def dropped(self) -> Dict[int, int]:
        """Per-shard counts of records the workers' rings lost in transit."""
        return dict(self._dropped)

    def render_lines(self) -> str:
        """The merged view as JSON lines, in ``(tick, shard, seq)`` order."""
        return "\n".join(render_record(record) for record in self.records())


#: The process-wide structured log; disabled until enabled.
STRUCTURED_LOG = StructuredLog()


def structured_log() -> StructuredLog:
    """The process-wide :class:`StructuredLog`."""
    return STRUCTURED_LOG


def enable_structured_logging(
    sink: Union[Sink, IO[str], None] = None,
) -> StructuredLog:
    """Turn on structured logging, optionally mirroring to *sink*."""
    if sink is not None:
        STRUCTURED_LOG.set_sink(sink)
    STRUCTURED_LOG.enabled = True
    return STRUCTURED_LOG


def disable_structured_logging() -> StructuredLog:
    """Turn structured logging back off (buffered records are kept)."""
    STRUCTURED_LOG.enabled = False
    return STRUCTURED_LOG


@contextmanager
def logging_enabled(
    sink: Union[Sink, IO[str], None] = None,
    clear: bool = True,
) -> Iterator[StructuredLog]:
    """Enable structured logging for a scope; restores the previous state.

    With ``clear`` (the default) previously buffered records are dropped
    on entry so the scope observes only itself.  The sink installed for
    the scope is detached on exit.
    """
    previous = STRUCTURED_LOG.enabled
    previous_sink = STRUCTURED_LOG._sink
    if clear:
        STRUCTURED_LOG.clear()
    enable_structured_logging(sink)
    try:
        yield STRUCTURED_LOG
    finally:
        STRUCTURED_LOG.enabled = previous
        STRUCTURED_LOG._sink = previous_sink
