"""Health/SLO evaluation *through* the awareness pipeline itself.

CMI's self-awareness reuses the Figure 5 machinery end to end: the
telemetry source agent publishes ``T_system`` samples on the bus, and each
SLO rule compiles to ordinary awareness operators —
``Filter_system[metric] -> Edge[cmp, limit] -> Output`` — deployed as
a detector agent like any Section 5.1 awareness description.  An alert is
therefore a plain :class:`~repro.events.queues.Notification` in the
operator role's persistent queue, with the same provenance chain every
other notification carries (``repro trace`` resolves it).

Three rule kinds cover the classic SLO shapes:

* **threshold** — the sampled value breaches a limit now
  (:func:`threshold_rule`);
* **rate over window** — the metric increased too fast across the last N
  sampling passes (:func:`rate_rule`, backed by
  :meth:`~repro.awareness.sources.SystemTelemetrySource.watch_rate`);
* **absence/staleness** — a counter that should keep moving has not
  increased for N passes (:func:`staleness_rule`, backed by
  :meth:`~repro.awareness.sources.SystemTelemetrySource.watch_staleness`).

The evaluator additionally mirrors every rule against the sampling passes
(via the source's observer hook) so :meth:`HealthEvaluator.health` can
answer "what is firing right now" without draining any queue — the data
behind ``repro health`` and the federation rollup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..awareness.engine import SYSTEM_SOURCE, AwarenessEngine
from ..awareness.operators.compare import named_bool_func_2
from ..awareness.sources import Sample, SystemTelemetrySource
from ..core.roles import RoleRef
from ..errors import SpecificationError
from .logging import STRUCTURED_LOG as _LOG

#: Health severities; ``failing`` rules flip the whole system to failing.
SEVERITY_DEGRADED = "degraded"
SEVERITY_FAILING = "failing"

#: System statuses from best to worst (federation rollup takes the max).
STATUS_ORDER: Tuple[str, ...] = ("ok", SEVERITY_DEGRADED, SEVERITY_FAILING)

#: ``repro health`` exit codes per status.
STATUS_EXIT_CODES: Dict[str, int] = {
    "ok": 0,
    SEVERITY_DEGRADED: 1,
    SEVERITY_FAILING: 2,
}

#: Process-schema id the health window is authored against (the canonical
#: events' ``processInstanceId`` is the reporting system's name).
HEALTH_SCHEMA_ID = "SystemHealth"

#: The awareness delivery role health alerts resolve to.
DEFAULT_HEALTH_ROLE = "operator"


@dataclass(frozen=True)
class SloRule:
    """One service-level objective: ``cmp(metric_value, limit)`` = breach.

    ``metric`` is the *sampled* name the rule's filter watches (derived
    rules watch ``rate[m/w]`` / ``stale[m]`` and keep the underlying name
    in ``base_metric``).  ``series_label`` selects which series of the
    metric the rule reads: ``None`` is the unlabelled total, ``"*"`` is
    any series (the rule breaches when *any* reading does).
    """

    name: str
    metric: str
    comparison: str
    limit: int
    severity: str = SEVERITY_DEGRADED
    description: str = ""
    kind: str = "threshold"
    window: Optional[int] = None
    base_metric: Optional[str] = None
    series_label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in (SEVERITY_DEGRADED, SEVERITY_FAILING):
            raise SpecificationError(
                f"rule {self.name!r}: severity must be "
                f"{SEVERITY_DEGRADED!r} or {SEVERITY_FAILING!r}, "
                f"got {self.severity!r}"
            )
        # Fails loudly on unknown comparison symbols.
        named_bool_func_2(self.comparison)

    def breached(self, value: int) -> bool:
        return bool(named_bool_func_2(self.comparison)(value, self.limit))

    def schema_name(self) -> str:
        return f"AS_Health_{self.name}"

    def user_description(self) -> str:
        if self.description:
            return self.description
        return f"SLO {self.name}: {self.metric} {self.comparison} {self.limit}"


def threshold_rule(
    name: str,
    metric: str,
    comparison: str,
    limit: int,
    severity: str = SEVERITY_DEGRADED,
    description: str = "",
    series_label: Optional[str] = None,
) -> SloRule:
    """A rule over the current sampled value of *metric*."""
    return SloRule(
        name=name,
        metric=metric,
        comparison=comparison,
        limit=limit,
        severity=severity,
        description=description,
        series_label=series_label,
    )


def rate_rule(
    name: str,
    metric: str,
    window: int,
    comparison: str,
    limit: int,
    severity: str = SEVERITY_DEGRADED,
    description: str = "",
) -> SloRule:
    """A rule over the increase of *metric* across *window* passes."""
    return SloRule(
        name=name,
        metric=f"rate[{metric}/{window}]",
        comparison=comparison,
        limit=limit,
        severity=severity,
        description=description,
        kind="rate",
        window=window,
        base_metric=metric,
    )


def staleness_rule(
    name: str,
    metric: str,
    max_stale: int,
    severity: str = SEVERITY_DEGRADED,
    description: str = "",
) -> SloRule:
    """A watchdog: fires when *metric* has not increased for more than
    *max_stale* consecutive sampling passes."""
    return SloRule(
        name=name,
        metric=f"stale[{metric}]",
        comparison=">",
        limit=max_stale,
        severity=severity,
        description=description,
        kind="staleness",
        base_metric=metric,
    )


def restart_storm_rule(
    window: int = 10,
    limit: int = 2,
    severity: str = SEVERITY_FAILING,
) -> SloRule:
    """Fires when shard workers keep crashing and being respawned.

    A rate rule over the supervisor's ``shard_recoveries`` counter: more
    than *limit* recoveries across the last *window* sampling passes
    means the federation is in a crash loop (each recovery replays the
    journal tail — forward progress is being paid for repeatedly), not
    absorbing an isolated fault.  Deploy it on systems running a durable
    sharded federation; elsewhere the metric never appears and the rule
    stays silent.
    """
    return rate_rule(
        "restart-storm",
        "shard_recoveries",
        window,
        ">",
        limit,
        severity=severity,
        description="Shard workers crashing and recovering repeatedly",
    )


def backpressure_rule(
    window: int = 10,
    limit: int = 50,
    severity: str = SEVERITY_DEGRADED,
) -> SloRule:
    """Fires when ingest keeps stalling on shard credit windows.

    A rate rule over the facade's ``backpressure_stalls_total``
    counter: more than *limit* stalls across the last *window* sampling
    passes means one or more shards persistently cannot keep up with
    the event stream — the credit window is doing its job (bounding
    memory), but throughput is now governed by the slowest shard.
    Opt-in like :func:`restart_storm_rule`: without a process-backend
    federation the metric never appears and the rule stays silent.
    """
    return rate_rule(
        "ingest-backpressure",
        "backpressure_stalls_total",
        window,
        ">",
        limit,
        severity=severity,
        description="Ingest repeatedly stalled on shard credit windows",
    )


def default_rules() -> Tuple[SloRule, ...]:
    """The out-of-the-box SLO set over the EnactmentSystem gauges."""
    return (
        threshold_rule(
            "queue-depth",
            "queue_depth",
            ">",
            50,
            description="Pending notifications piling up undelivered",
        ),
        threshold_rule(
            "delivery-lag",
            "delivery_lag",
            ">",
            100,
            description="Oldest pending notification waiting too long",
        ),
        rate_rule(
            "failure-rate",
            "bus_failed_total",
            5,
            ">",
            0,
            severity=SEVERITY_FAILING,
            description="Bus handlers raising under error isolation",
        ),
        threshold_rule(
            "timer-backlog",
            "timer_backlog",
            ">",
            100,
            description="Timer service backlog growing",
        ),
        threshold_rule(
            "journal-divergence",
            "journal_divergence",
            ">",
            0,
            description="Journal contains records recovery would refuse",
        ),
    )


@dataclass
class RuleState:
    """Live evaluation state of one deployed rule."""

    rule: SloRule
    firing: bool = False
    last_value: Optional[int] = None
    last_breach_tick: Optional[int] = None
    fired_count: int = 0

    def as_dict(self) -> Dict[str, Any]:
        rule = self.rule
        return {
            "metric": rule.metric,
            "comparison": rule.comparison,
            "limit": rule.limit,
            "severity": rule.severity,
            "kind": rule.kind,
            "firing": self.firing,
            "last_value": self.last_value,
            "last_breach_tick": self.last_breach_tick,
            "fired_count": self.fired_count,
        }


@dataclass(frozen=True)
class SystemHealth:
    """One system's status plus the rule states behind it."""

    system: str
    status: str
    tick: int
    rules: Tuple[RuleState, ...] = field(default_factory=tuple)

    @property
    def exit_code(self) -> int:
        return STATUS_EXIT_CODES[self.status]

    def firing(self) -> Tuple[RuleState, ...]:
        return tuple(state for state in self.rules if state.firing)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "system": self.system,
            "status": self.status,
            "tick": self.tick,
            "rules": {
                state.rule.name: state.as_dict() for state in self.rules
            },
        }


class HealthEvaluator:
    """Compiles SLO rules onto the awareness pipeline and tracks them.

    Requires the telemetry source's producer to be registered on the
    engine as the :data:`~repro.awareness.engine.SYSTEM_SOURCE` diamond
    (``SelfAwareness`` does this wiring).  :meth:`deploy` authors one
    specification window with a ``Filter_system -> Edge -> Output``
    chain per rule and deploys it; alerts then flow to *role*'s queue
    with full provenance, while the evaluator's own rule states refresh
    on every sampling pass via the source observer hook.  ``Edge`` is
    the rising-edge comparison, so a breach episode alerts exactly once
    (at the transition) no matter how long it persists.
    """

    def __init__(
        self,
        awareness: AwarenessEngine,
        source: SystemTelemetrySource,
        system_name: str = "cmi",
        role: str = DEFAULT_HEALTH_ROLE,
        schema_id: str = HEALTH_SCHEMA_ID,
        rules: Optional[Tuple[SloRule, ...]] = None,
    ) -> None:
        self.awareness = awareness
        self.source = source
        self.system_name = system_name
        self.role = role
        self.schema_id = schema_id
        self._states: Dict[str, RuleState] = {}
        self._detector: Optional[Any] = None
        self._last_tick = source.clock.now()
        source.on_sample(self._evaluate)
        for rule in rules if rules is not None else default_rules():
            self.add_rule(rule)

    # -- rule management ---------------------------------------------------

    def add_rule(self, rule: SloRule) -> SloRule:
        """Register a rule (before :meth:`deploy`); derived-metric rules
        also install their rate/staleness watch on the source."""
        if self._detector is not None:
            raise SpecificationError(
                "health rules must be added before deploy(); undeploy the "
                "detector and redeploy to change the rule set"
            )
        if rule.name in self._states:
            raise SpecificationError(
                f"health rule {rule.name!r} already exists"
            )
        if rule.kind == "rate":
            assert rule.base_metric is not None and rule.window is not None
            self.source.watch_rate(rule.base_metric, rule.window)
        elif rule.kind == "staleness":
            assert rule.base_metric is not None
            self.source.watch_staleness(rule.base_metric)
        self._states[rule.name] = RuleState(rule=rule)
        return rule

    def rules(self) -> Tuple[SloRule, ...]:
        return tuple(state.rule for state in self._states.values())

    # -- deployment --------------------------------------------------------

    def deploy(self) -> Any:
        """Author the health window and deploy it as a detector agent."""
        if self._detector is not None:
            return self._detector
        window = self.awareness.create_window(self.schema_id)
        source_node = window.source(SYSTEM_SOURCE)
        for state in self._states.values():
            rule = state.rule
            watch = window.place(
                "Filter_system",
                rule.metric,
                rule.series_label,
                instance_name=f"watch_{rule.name}",
            )
            window.connect(source_node, watch, 0)
            comparison = named_bool_func_2(rule.comparison)
            check = window.place(
                "Edge",
                lambda value, c=comparison, t=rule.limit: c(value, t),
                instance_name=f"check_{rule.name}",
            )
            # Stash the textual form so window_to_dsl can decompile the
            # deployed health window like a hand-authored one.
            check._dsl_rendering = (  # type: ignore[attr-defined]
                f"Edge[{rule.comparison}, {rule.limit}]"
            )
            window.connect(watch, check, 0)
            window.output(
                check,
                RoleRef(self.role),
                user_description=rule.user_description(),
                schema_name=rule.schema_name(),
            )
        window.validate()
        self._detector = self.awareness.deploy(window)
        if _LOG.enabled:
            _LOG.emit(
                "health",
                "rules_deployed",
                system=self.system_name,
                tick=self.source.clock.now(),
                rules=sorted(self._states),
                role=self.role,
            )
        return self._detector

    # -- evaluation --------------------------------------------------------

    def _evaluate(self, samples: List[Sample], now: int) -> None:
        self._last_tick = now
        by_metric: Dict[str, List[Tuple[Optional[str], int]]] = {}
        for metric, label, value in samples:
            by_metric.setdefault(metric, []).append((label, value))
        for state in self._states.values():
            rule = state.rule
            readings = by_metric.get(rule.metric)
            if readings is None:
                continue
            if rule.series_label == "*":
                relevant = [value for __, value in readings]
            else:
                relevant = [
                    value
                    for label, value in readings
                    if label == rule.series_label
                ]
            if not relevant:
                continue
            breaching = [value for value in relevant if rule.breached(value)]
            state.last_value = breaching[0] if breaching else max(relevant)
            if breaching:
                state.last_breach_tick = now
                if not state.firing:
                    state.firing = True
                    state.fired_count += 1
                    if _LOG.enabled:
                        _LOG.emit(
                            "health",
                            "slo_fired",
                            level="warning",
                            system=self.system_name,
                            tick=now,
                            rule=rule.name,
                            metric=rule.metric,
                            value=state.last_value,
                            limit=rule.limit,
                            severity=rule.severity,
                        )
            elif state.firing:
                state.firing = False
                if _LOG.enabled:
                    _LOG.emit(
                        "health",
                        "slo_cleared",
                        system=self.system_name,
                        tick=now,
                        rule=rule.name,
                        metric=rule.metric,
                        value=state.last_value,
                    )

    # -- status ------------------------------------------------------------

    def health(self) -> SystemHealth:
        """The system's current status from the mirrored rule states."""
        status = "ok"
        for state in self._states.values():
            if not state.firing:
                continue
            if state.rule.severity == SEVERITY_FAILING:
                status = SEVERITY_FAILING
            elif status == "ok":
                status = SEVERITY_DEGRADED
        return SystemHealth(
            system=self.system_name,
            status=status,
            tick=self._last_tick,
            rules=tuple(self._states.values()),
        )


def evaluate_registry(
    registry: Any,
    rules: Optional[Tuple[SloRule, ...]] = None,
    system_name: str = "federation",
    tick: int = 0,
) -> SystemHealth:
    """Evaluate threshold SLO rules directly against a metrics registry.

    The pipeline-compiled :class:`HealthEvaluator` needs a live telemetry
    source; the *merged* federation registry
    (:class:`~repro.observability.selfawareness.FederationMetricsView`)
    has no such source — it is a point-in-time aggregate of worker
    snapshots.  This function closes the gap: each threshold rule reads
    every series of its instrument (in the merged registry that means
    one series per shard, thanks to the leading ``shard`` label) and
    fires when *any* reading breaches, so one worker-side SLO breach
    surfaces in the federation status.  Rate and staleness rules need
    sampling history and are skipped here.
    """
    from .registry import (
        CallbackGauge,
        Counter,
        Gauge,
        MultiCallbackGauge,
    )

    states: List[RuleState] = []
    for rule in rules if rules is not None else default_rules():
        if rule.kind != "threshold":
            continue
        state = RuleState(rule=rule)
        states.append(state)
        instrument = registry.get(rule.metric)
        if instrument is None or not isinstance(
            instrument, (Counter, Gauge, CallbackGauge, MultiCallbackGauge)
        ):
            continue
        readings = [
            (labels, int(value))
            for labels, value in instrument.series().items()
            if rule.series_label in (None, "*")
            or rule.series_label in labels
        ]
        if not readings:
            continue
        breaching = [
            value for __, value in readings if rule.breached(value)
        ]
        state.last_value = (
            breaching[0] if breaching else max(value for __, value in readings)
        )
        if breaching:
            state.firing = True
            state.fired_count = 1
            state.last_breach_tick = tick
    status = "ok"
    for state in states:
        if not state.firing:
            continue
        if state.rule.severity == SEVERITY_FAILING:
            status = SEVERITY_FAILING
        elif status == "ok":
            status = SEVERITY_DEGRADED
    return SystemHealth(
        system=system_name,
        status=status,
        tick=tick,
        rules=tuple(states),
    )


def worst_status(statuses: Iterable[str]) -> str:
    """The worst of *statuses* under :data:`STATUS_ORDER` (ok if empty)."""
    worst = 0
    for status in statuses:
        worst = max(worst, STATUS_ORDER.index(status))
    return STATUS_ORDER[worst]
