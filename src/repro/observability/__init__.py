"""Pipeline observability: metrics, tracing, and recognition provenance.

Two planes, deliberately separate:

* **Always-on statistics** — every pipeline component registers its
  counters in a :class:`~repro.observability.registry.MetricsRegistry`
  (one per :class:`~repro.federation.system.EnactmentSystem`; standalone
  components use a private registry).  These replace the hand-rolled
  ``Counter`` dicts and bare ints the Figure 5 agents used to carry, and
  ``EnactmentSystem.stats()`` is now a thin view over them.

* **Opt-in instrumentation** — tracing and provenance are *off* by
  default; the hot paths pay one attribute load and a branch.  Enabling
  the process-wide :data:`INSTRUMENTATION` turns on span recording (one
  span per publish/dispatch, operator ``consume``, delivery fan-out, and
  queue append), per-stage latency histograms, and provenance chains on
  every event.  The QE8 benchmark bounds the enabled overhead at < 1.3x
  the disabled per-event cost.

Typical usage::

    from repro.observability import instrumented

    with instrumented() as obs:
        ...drive the pipeline...
        print(obs.tracer.recent()[-1].render())
        for record in obs.provenance.recent_deliveries():
            print(record.render())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .logging import (
    DEFAULT_MAX_MERGED_RECORDS,
    DEFAULT_MAX_RECORDS,
    STRUCTURED_LOG,
    FederationLogView,
    StructuredLog,
    disable_structured_logging,
    enable_structured_logging,
    logging_enabled,
    structured_log,
)
from .provenance import (
    DEFAULT_MAX_DELIVERIES,
    DeliveryProvenance,
    ProvenanceNode,
    ProvenanceTracker,
)
from .registry import (
    DEFAULT_MAX_SERIES,
    BoundCounter,
    BoundHistogram,
    CallbackGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    MultiCallbackGauge,
    default_registry,
    set_default_registry,
)
from .trace import (
    DEFAULT_MAX_TRACES,
    DEFAULT_SAMPLE_EVERY,
    Span,
    TraceAssembler,
    TraceContext,
    Tracer,
    is_recorded,
)

__all__ = [
    "BoundCounter",
    "BoundHistogram",
    "CallbackGauge",
    "Counter",
    "DEFAULT_MAX_DELIVERIES",
    "DEFAULT_MAX_MERGED_RECORDS",
    "DEFAULT_MAX_RECORDS",
    "DEFAULT_MAX_SERIES",
    "DEFAULT_MAX_TRACES",
    "DEFAULT_SAMPLE_EVERY",
    "DeliveryProvenance",
    "FederationLogView",
    "Gauge",
    "Histogram",
    "INSTRUMENTATION",
    "Instrumentation",
    "MetricsError",
    "MetricsRegistry",
    "MultiCallbackGauge",
    "ProvenanceNode",
    "ProvenanceTracker",
    "STRUCTURED_LOG",
    "Span",
    "StructuredLog",
    "TraceAssembler",
    "TraceContext",
    "Tracer",
    "default_registry",
    "disable_instrumentation",
    "disable_structured_logging",
    "enable_instrumentation",
    "enable_structured_logging",
    "instrumented",
    "is_recorded",
    "logging_enabled",
    "set_default_registry",
    "structured_log",
]


class Instrumentation:
    """The opt-in plane: one enabled flag, one tracer, one provenance log.

    Pipeline hot paths hold a reference to the process-wide
    :data:`INSTRUMENTATION` object and check :attr:`enabled` before doing
    any instrumentation work, so the disabled cost is a single attribute
    load per stage.
    """

    __slots__ = ("enabled", "registry", "tracer", "provenance")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        max_traces: int = DEFAULT_MAX_TRACES,
        max_deliveries: int = DEFAULT_MAX_DELIVERIES,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.tracer = Tracer(max_traces=max_traces, registry=self.registry)
        self.provenance = ProvenanceTracker(max_deliveries=max_deliveries)
        self.enabled = False

    def enable(self) -> "Instrumentation":
        self.enabled = True
        return self

    def disable(self) -> "Instrumentation":
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop recorded traces and delivery provenance (flag unchanged)."""
        self.tracer.clear()
        self.provenance.clear()


#: The process-wide instrumentation plane; disabled until enabled.
INSTRUMENTATION = Instrumentation()

# The structured log joins its records to the instrumentation plane's
# in-flight traces (the `trace`/`span` fields of each record).
STRUCTURED_LOG.bind_tracer(INSTRUMENTATION.tracer)


def enable_instrumentation() -> Instrumentation:
    """Turn on tracing + provenance for the whole pipeline."""
    return INSTRUMENTATION.enable()


def disable_instrumentation() -> Instrumentation:
    """Turn tracing + provenance back off (recorded data is kept)."""
    return INSTRUMENTATION.disable()


@contextmanager
def instrumented(reset: bool = True) -> Iterator[Instrumentation]:
    """Enable instrumentation for a scope; restores the previous state.

    With ``reset`` (the default) previously recorded traces and delivery
    provenance are dropped on entry, so the scope observes only itself.
    """
    previous = INSTRUMENTATION.enabled
    if reset:
        INSTRUMENTATION.reset()
    INSTRUMENTATION.enable()
    try:
        yield INSTRUMENTATION
    finally:
        INSTRUMENTATION.enabled = previous
