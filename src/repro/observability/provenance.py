"""Recognition provenance: why was this notification delivered?

Section 6.2's output operator attaches a user-friendly description because
"participants need to know why they were notified" — but a description is
prose, not evidence.  Provenance makes the evidence first-class: while
instrumentation is enabled, every event flowing through the pipeline
carries a :class:`ProvenanceNode` linking it to the operator that produced
it and to the nodes of its constituent events, all the way down to the
primitive activity-state-change / context-field-change events gathered by
the event source agents.

The chain is built incrementally and cheaply: producers stamp primitive
events with a leaf node; :meth:`~repro.awareness.operators.base.EventOperator.consume`
stamps each output with a node whose ``inputs`` are the constituents'
nodes (``And``/``Seq`` report *all* constituents, not just the event that
completed the pattern); the delivery agent records one
:class:`DeliveryProvenance` per queued notification in a bounded ring
buffer.  ``repro trace`` and :class:`~repro.awareness.viewer.AwarenessViewer`
render the chains.

Nodes are immutable once created and hold only strings/ints plus child
node references — no live :class:`~repro.events.event.Event` objects — so
retaining a chain does not pin operator state or event payloads.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..events.event import Event

#: Default capacity of the recent-delivery ring buffer.
DEFAULT_MAX_DELIVERIES = 256

#: ``kind`` of a leaf node produced by a primitive event producer.
PRIMITIVE = "primitive"


class ProvenanceNode:
    """One hop in a recognition chain: an event and the node that made it.

    ``event_id`` is the tracker's sequence number (rendered as ``ev-N``).
    ``summary`` is either a ready string (operator hops) or, for primitive
    hops, the raw digest tuple built on the hot path — formatting a
    summary costs more than recording one, so primitives defer it to
    :meth:`summary_text`.
    """

    __slots__ = (
        "event_id",
        "node",
        "kind",
        "event_type",
        "logical_time",
        "summary",
        "inputs",
    )

    def __init__(
        self,
        event_id: int,
        node: str,
        kind: str,
        event_type: str,
        logical_time: int,
        summary: object,
        inputs: Tuple["ProvenanceNode", ...] = (),
    ) -> None:
        self.event_id = event_id
        self.node = node
        self.kind = kind
        self.event_type = event_type
        self.logical_time = logical_time
        self.summary = summary
        self.inputs = inputs

    @property
    def is_primitive(self) -> bool:
        return self.kind == PRIMITIVE

    def summary_text(self) -> str:
        """The one-line digest, formatting deferred primitive tuples."""
        summary = self.summary
        if isinstance(summary, tuple):
            if summary[0] == "activity":
                return (
                    f"activity {summary[1]!r}: {summary[2]} -> {summary[3]}"
                )
            return f"context {summary[1]!r}.{summary[2]} = {summary[3]!r}"
        return summary if isinstance(summary, str) else ""

    def primitives(self) -> Tuple["ProvenanceNode", ...]:
        """The primitive-event leaves of this chain, left to right."""
        if self.is_primitive:
            return (self,)
        out: List[ProvenanceNode] = []
        for node in self.inputs:
            out.extend(node.primitives())
        return tuple(out)

    def operator_nodes(self) -> Tuple[str, ...]:
        """Instance names of every operator on the chain, root first."""
        out: List[str] = [] if self.is_primitive else [self.node]
        for node in self.inputs:
            out.extend(node.operator_nodes())
        return tuple(out)

    def signature(self) -> Tuple[object, ...]:
        """Structural identity of the chain, excluding event ids.

        Event ids are allocation-order sequence numbers, so two engines
        recognizing the same composites through different plumbing (e.g.
        a plan-sharing engine mints one canonical event where an unshared
        engine mints one per window) assign different ids to equal
        chains.  The signature keeps everything else — node names, kinds,
        types, logical times, summaries, and the recursive input
        structure — and is what equivalence suites compare.
        """
        return (
            self.node,
            self.kind,
            self.event_type,
            self.logical_time,
            self.summary_text(),
            tuple(node.signature() for node in self.inputs),
        )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "event_id": f"ev-{self.event_id}",
            "node": self.node,
            "kind": self.kind,
            "event_type": self.event_type,
            "logical_time": self.logical_time,
        }
        summary = self.summary_text()
        if summary:
            out["summary"] = summary
        if self.inputs:
            out["inputs"] = [node.to_dict() for node in self.inputs]
        return out

    def render(self, indent: int = 0) -> str:
        """Indented chain rendering, this node first, constituents below."""
        pad = "  " * indent
        label = "primitive" if self.is_primitive else self.kind
        summary_text = self.summary_text()
        summary = f" — {summary_text}" if summary_text else ""
        lines = [
            f"{pad}{label} {self.node!r} ev ev-{self.event_id} "
            f"[{self.event_type} t={self.logical_time}]{summary}"
        ]
        for node in self.inputs:
            lines.append(node.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProvenanceNode(ev-{self.event_id}, {self.node!r}, "
            f"kind={self.kind!r}, inputs={len(self.inputs)})"
        )


class DeliveryProvenance:
    """The provenance record of one queued notification."""

    __slots__ = (
        "notification_id",
        "participant_id",
        "schema_name",
        "description",
        "logical_time",
        "chain",
    )

    def __init__(
        self,
        notification_id: str,
        participant_id: str,
        schema_name: str,
        description: str,
        logical_time: int,
        chain: Optional[ProvenanceNode],
    ) -> None:
        self.notification_id = notification_id
        self.participant_id = participant_id
        self.schema_name = schema_name
        self.description = description
        self.logical_time = logical_time
        self.chain = chain

    def render(self) -> str:
        header = (
            f"notification {self.notification_id} -> "
            f"{self.participant_id} [t={self.logical_time}] "
            f"{self.schema_name}: {self.description!r}"
        )
        if self.chain is None:
            return header + "\n  (no recorded chain)"
        return header + "\n" + self.chain.render(indent=1)

    def signature(self) -> Tuple[object, ...]:
        """Id-free identity of one delivery plus its full chain."""
        return (
            self.participant_id,
            self.schema_name,
            self.description,
            self.logical_time,
            self.chain.signature() if self.chain is not None else None,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "notification_id": self.notification_id,
            "participant_id": self.participant_id,
            "schema_name": self.schema_name,
            "description": self.description,
            "logical_time": self.logical_time,
            "chain": self.chain.to_dict() if self.chain is not None else None,
        }


class ProvenanceTracker:
    """Assigns event ids and keeps the recent-delivery ring buffer."""

    def __init__(self, max_deliveries: int = DEFAULT_MAX_DELIVERIES) -> None:
        self._next_id = 0
        self._recent: Deque[DeliveryProvenance] = deque(maxlen=max_deliveries)
        self.max_deliveries = max_deliveries

    # -- chain construction (hot paths, enabled-only) ----------------------

    def record_primitive(self, event: "Event", producer_id: str) -> ProvenanceNode:
        """Stamp a primitive event fresh from a producer; returns its node.

        Runs once per primitive event whenever instrumentation is on, so
        the node is built with direct slot stores (no ``__init__`` hop)
        and the summary stays an unformatted digest tuple.
        """
        event_id = self._next_id + 1
        self._next_id = event_id
        params = event._params
        # The digest is a raw tuple, formatted lazily by `summary_text`:
        # recording runs once per primitive event, rendering rarely.
        if "newState" in params:
            summary: object = (
                "activity",
                params.get("activityVariableId"),
                params["oldState"],
                params["newState"],
            )
        elif "fieldName" in params:
            summary = (
                "context",
                params.get("contextName"),
                params["fieldName"],
                params.get("newFieldValue"),
            )
        else:
            summary = ""
        node = ProvenanceNode.__new__(ProvenanceNode)
        node.event_id = event_id
        node.node = producer_id
        node.kind = PRIMITIVE
        node.event_type = params["type"]
        node.logical_time = params["time"]
        node.summary = summary
        node.inputs = ()
        event.provenance = node
        return node

    def record_operator(
        self,
        output: "Event",
        node_name: str,
        kind: str,
        constituents: Sequence["Event"],
    ) -> ProvenanceNode:
        """Stamp an operator output; links the constituents' chains."""
        if len(constituents) == 1:
            # The overwhelmingly common case: unary operators and pass-
            # through hops link straight to the one constituent's chain.
            provenance = constituents[0].provenance
            inputs = () if provenance is None else (provenance,)
        else:
            inputs = tuple(
                provenance
                for provenance in (event.provenance for event in constituents)
                if provenance is not None
            )
        params = output._params
        summary = params.get("description") or params.get("userDescription")
        event_id = self._next_id + 1
        self._next_id = event_id
        node = ProvenanceNode.__new__(ProvenanceNode)
        node.event_id = event_id
        node.node = node_name
        node.kind = kind
        node.event_type = params["type"]
        node.logical_time = params["time"]
        node.summary = summary or ""
        node.inputs = inputs
        output.provenance = node
        return node

    def record_delivery(
        self,
        notification_id: str,
        participant_id: str,
        schema_name: str,
        description: str,
        logical_time: int,
        event: "Event",
    ) -> DeliveryProvenance:
        """Record one queued notification's chain in the ring buffer."""
        record = DeliveryProvenance(
            notification_id,
            participant_id,
            schema_name,
            description,
            logical_time,
            event.provenance,
        )
        self._recent.append(record)
        return record

    # -- inspection --------------------------------------------------------

    def recent_deliveries(self) -> Tuple[DeliveryProvenance, ...]:
        """Recent queued notifications with chains, oldest first."""
        return tuple(self._recent)

    def clear(self) -> None:
        self._recent.clear()
        self._next_id = 0
