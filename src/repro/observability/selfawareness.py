"""Wiring health awareness onto enactment systems, and the federation view.

:class:`SelfAwareness` is the one-call attach: given an
:class:`~repro.federation.system.EnactmentSystem` it registers the
``T_system`` telemetry producer as the engine's ``SystemEvent`` source,
deploys the SLO rules as a detector agent, and makes sure the operator
role is deliverable (registering a synthetic PROGRAM participant when the
role is empty — the paper's Section 4 organizational model admits
program participants, and an unattended system still needs its alerts
queued *somewhere* durable).

:class:`FederationHealthView` rolls several systems' health up into one
``ok``/``degraded``/``failing`` verdict — the data model behind
``repro health`` and ``repro top``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..awareness.engine import SYSTEM_SOURCE
from ..awareness.sources import DEFAULT_SAMPLING_INTERVAL, SystemTelemetrySource
from ..core.roles import Participant, ParticipantKind
from ..events.queues import Notification
from ..federation.system import EnactmentSystem
from .health import (
    DEFAULT_HEALTH_ROLE,
    HealthEvaluator,
    SloRule,
    SystemHealth,
    evaluate_registry,
    worst_status,
)
from .registry import Histogram, MetricsRegistry


class SelfAwareness:
    """The health pipeline of one enactment system, fully wired.

    Construction is the deployment: after ``SelfAwareness(system)`` the
    telemetry source samples every *interval* clock ticks, the SLO
    detector is live on the bus, and alerts land in the *role* members'
    persistent queues.  :meth:`health` reads the current status without
    touching the queues; :meth:`alerts` drains the synthetic health
    agent's queue (when this wiring registered one).
    """

    #: Participant id of the synthetic alert receiver.
    AGENT_ID = "health-agent"

    def __init__(
        self,
        system: EnactmentSystem,
        rules: Optional[Tuple[SloRule, ...]] = None,
        interval: int = DEFAULT_SAMPLING_INTERVAL,
        role: str = DEFAULT_HEALTH_ROLE,
    ) -> None:
        self.system = system
        self.role = role
        self._ensure_deliverable_role(role)
        self.source = SystemTelemetrySource(
            system.clock,
            system.metrics,
            bus=system.bus,
            system_id=system.name,
            interval=interval,
        )
        system.awareness.register_external_source(
            SYSTEM_SOURCE, self.source.producer
        )
        self.evaluator = HealthEvaluator(
            system.awareness,
            self.source,
            system_name=system.name,
            role=role,
            rules=rules,
        )
        self.detector = self.evaluator.deploy()

    def _ensure_deliverable_role(self, role_name: str) -> None:
        roles = self.system.core.roles
        if roles.has_role(role_name):
            role = roles.role(role_name)
        else:
            role = roles.define_role(role_name)
        if role.members():
            return
        agent = Participant(
            self.AGENT_ID, "Health Agent", ParticipantKind.PROGRAM
        )
        roles.register_participant(agent)
        role.add_member(agent)

    # -- reading -----------------------------------------------------------

    def sample_now(self) -> None:
        """Force one sampling pass at the current tick."""
        self.source.sample_now()

    def health(self) -> SystemHealth:
        return self.evaluator.health()

    def alerts(self) -> Tuple[Notification, ...]:
        """Alert notifications pending in the synthetic agent's queue."""
        return self.system.awareness.delivery.queue.pending(self.AGENT_ID)


@dataclass(frozen=True)
class FederationHealth:
    """The rollup: the federation is as healthy as its sickest member."""

    status: str
    systems: Tuple[SystemHealth, ...]

    @property
    def exit_code(self) -> int:
        from .health import STATUS_EXIT_CODES

        return STATUS_EXIT_CODES[self.status]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "federation": self.status,
            "systems": [health.as_dict() for health in self.systems],
        }


class FederationHealthView:
    """Aggregates N systems' self-awareness into one federation verdict."""

    def __init__(self, members: Iterable[SelfAwareness] = ()) -> None:
        self._members: Dict[str, SelfAwareness] = {}
        for member in members:
            self.add(member)

    def add(self, member: SelfAwareness) -> SelfAwareness:
        name = member.system.name
        if name in self._members:
            raise ValueError(
                f"federation already has a system named {name!r}; give "
                f"each EnactmentSystem a distinct name"
            )
        self._members[name] = member
        return member

    def members(self) -> Tuple[SelfAwareness, ...]:
        return tuple(self._members.values())

    def rollup(self) -> FederationHealth:
        healths = tuple(
            member.health() for member in self._members.values()
        )
        return FederationHealth(
            status=worst_status([health.status for health in healths]),
            systems=healths,
        )

    def as_dict(self) -> Dict[str, Any]:
        return self.rollup().as_dict()

    def render(self) -> str:
        """A fixed-width status table, one row per member system."""
        rollup = self.rollup()
        lines: List[str] = [
            f"{'SYSTEM':<12} {'STATUS':<9} {'TICK':>6} {'QUEUE':>6} "
            f"{'LAG':>5}  ALERTS"
        ]
        for health in rollup.systems:
            member = self._members[health.system]
            metrics = member.system.metrics
            queue_depth = int(
                member.system.awareness.delivery.queue.pending_count()
            )
            lag = int(metrics.value("delivery_lag"))
            firing = ", ".join(
                state.rule.name for state in health.firing()
            )
            lines.append(
                f"{health.system:<12} {health.status:<9} "
                f"{health.tick:>6} {queue_depth:>6} {lag:>5}  "
                f"{firing or '-'}"
            )
        lines.append(f"federation: {rollup.status}")
        return "\n".join(lines)


class FederationMetricsView:
    """The facade-side aggregate of every shard's metrics registry.

    Each shard ships a lossless :meth:`MetricsRegistry.snapshot` on its
    stats/flush frames; the view keeps the *latest* snapshot per shard
    and rebuilds a merged registry on demand, every instrument gaining a
    leading ``shard`` label (:meth:`MetricsRegistry.merge`).  Rebuilding
    from the latest snapshots (rather than merging incrementally) is
    what keeps counters correct — snapshots are cumulative, so folding
    two generations of the same shard would double-count.
    """

    def __init__(self) -> None:
        self._snapshots: Dict[int, Dict[str, Any]] = {}

    def update(self, shard: int, snapshot: Dict[str, Any]) -> None:
        """Replace *shard*'s latest registry snapshot."""
        self._snapshots[shard] = snapshot

    def shards(self) -> Tuple[int, ...]:
        return tuple(sorted(self._snapshots))

    def registry(self) -> MetricsRegistry:
        """The merged federation registry (one series per shard)."""
        merged = MetricsRegistry()
        for shard in sorted(self._snapshots):
            merged.merge(self._snapshots[shard], shard=str(shard))
        return merged

    def render_text(self) -> str:
        """Prometheus text exposition across the whole federation."""
        return self.registry().render_text()

    def stage_p95(self) -> Dict[Tuple[str, str], float]:
        """p95 stage latency (µs) per ``(shard, stage)`` from the merged
        ``pipeline_stage_us`` histogram."""
        merged = self.registry()
        histogram = merged.get("pipeline_stage_us")
        if not isinstance(histogram, Histogram):
            return {}
        return {
            (labels[0], labels[1]): histogram.quantile(0.95, labels)
            for labels in histogram.series_labels()
        }

    def health(
        self,
        rules: Optional[Tuple[SloRule, ...]] = None,
        tick: int = 0,
    ) -> SystemHealth:
        """Threshold SLO rules evaluated over the merged registry.

        A breach in any one shard's series fires the federation rule —
        the worker-side SLO surfacing the tentpole asks for.
        """
        return evaluate_registry(
            self.registry(),
            rules=rules,
            system_name="federation",
            tick=tick,
        )
