"""End-to-end pipeline tracing: spans, context propagation, ring buffer.

The Figure 5 pipeline is synchronous — a primitive event flows from the
event source agent through the detector agents' operator DAGs to the
delivery agent and the participant queues inside one call stack.  The
tracer exploits that: a *span* opened while another span is active becomes
its child, so the natural call nesting reconstructs the pipeline hops
without any thread-local or async context plumbing.

Spans are logical-clock-aware: each records the event's logical ``time``
alongside its wall-clock duration, so a trace answers both "which hops did
this event take" (structure) and "what did each hop cost" (latency).  On
close, every span feeds a per-stage latency histogram
(``pipeline_stage_us``, with the bucket conventions of
:mod:`repro.metrics.latency`), and completed *root* spans join a bounded
ring buffer (:meth:`Tracer.recent`) exportable as JSON — the flight
recorder read by the ``repro trace`` CLI.

Everything here is allocation-light by design: a span is one ``__slots__``
object, two ``perf_counter`` reads, and one histogram observation; the
tracer holds no global state beyond its stack and ring buffer.

**Head-based sampling.**  Recording every span of every trace would put a
fixed per-stage tax on the hot path, so the tracer samples at the *trace*
root: one in :attr:`Tracer.sample_every` traces is recorded in full
(span tree, histograms, ring buffer); the rest cost only two integer
depth updates per stage.  The sampling decision is made once when the
root span opens and applies to the whole trace, so recorded trees are
never partial.  Set ``sample_every=1`` to record everything (tests do).
Provenance is *not* sampled — recognition chains stay complete.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from time import perf_counter
from typing import Deque, Dict, List, Optional, Sequence, Tuple, cast

from ..metrics.latency import STAGE_LATENCY_BUCKETS_US
from .registry import BoundHistogram, Histogram, MetricsRegistry

#: Default capacity of the recent-trace ring buffer.
DEFAULT_MAX_TRACES = 256

#: Default trace sampling period: record one in this many traces fully.
DEFAULT_SAMPLE_EVERY = 16

JsonSpan = Dict[str, object]

WireTraceContext = List[object]


@dataclass(frozen=True)
class TraceContext:
    """The portable identity of one logical trace.

    Three fields cross the shard boundary inside wire frames: which trace
    a batch of events belongs to, which facade-side span is the logical
    parent of the work a worker performs for it, and whether the facade's
    head sampler chose to record the trace.  Workers honor ``sampled``
    verbatim — there is no re-sampling downstream, so a recorded trace is
    never partial across shards.
    """

    trace_id: str
    parent_span_id: str
    sampled: bool

    def to_wire(self) -> WireTraceContext:
        """The compact list form carried on ``events`` frames."""
        return [self.trace_id, self.parent_span_id, 1 if self.sampled else 0]

    @classmethod
    def from_wire(
        cls, payload: Optional[Sequence[object]]
    ) -> Optional["TraceContext"]:
        if payload is None:
            return None
        trace_id, parent_span_id, sampled = payload
        return cls(str(trace_id), str(parent_span_id), bool(sampled))


class _LightSpan:
    """Singleton token for stages of a trace the sampler skipped."""

    __slots__ = ()


_LIGHT = _LightSpan()
#: The token under its public type; a zero-cost alias for annotations.
_LIGHT_AS_SPAN = cast("Span", _LIGHT)


class Span:
    """One timed pipeline stage; a context manager that nests naturally."""

    __slots__ = (
        "name",
        "logical_time",
        "attributes",
        "start",
        "duration",
        "children",
        "light",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        logical_time: Optional[int],
        attributes: Optional[Dict[str, object]],
    ) -> None:
        self.name = name
        self.logical_time = logical_time
        self.attributes = attributes
        self.start = 0.0
        self.duration = 0.0
        self.children: List[Span] = []
        self.light = False
        self._tracer = tracer

    def __enter__(self) -> "Span":
        self._tracer._enter_span(self)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._tracer._exit_span(self)

    @property
    def duration_us(self) -> float:
        return self.duration * 1e6

    def to_dict(self) -> JsonSpan:
        """A JSON-able rendering of this span and its subtree."""
        out: JsonSpan = {
            "name": self.name,
            "duration_us": round(self.duration_us, 3),
        }
        if self.logical_time is not None:
            out["logical_time"] = self.logical_time
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def render(self, indent: int = 0) -> str:
        """An indented one-span-per-line tree rendering."""
        attrs = ""
        if self.attributes:
            attrs = " " + " ".join(
                f"{key}={value}" for key, value in self.attributes.items()
            )
        time_part = (
            f" t={self.logical_time}" if self.logical_time is not None else ""
        )
        lines = [
            f"{'  ' * indent}{self.name}{time_part} "
            f"({self.duration_us:.1f}us){attrs}"
        ]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class Tracer:
    """Span recorder for the synchronous pipeline.

    One tracer is single-threaded by construction (the pipeline it
    instruments is synchronous); traces from concurrent federations should
    use separate tracers.
    """

    def __init__(
        self,
        max_traces: int = DEFAULT_MAX_TRACES,
        registry: Optional[MetricsRegistry] = None,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
    ) -> None:
        self._stack: List[Span] = []
        self._traces: Deque[Span] = deque(maxlen=max_traces)
        self.max_traces = max_traces
        self.completed_spans = 0
        #: Record one in this many traces fully; mutable at any trace
        #: boundary (1 = record everything).
        self.sample_every = max(1, sample_every)
        self._trace_count = 0
        #: Nesting depth inside a trace the sampler skipped.  Part of the
        #: hot-path contract: instrumented pipeline stages may check and
        #: bump this *in place* (`if tracer._light_depth: ... += 1` /
        #: `... -= 1`) instead of calling begin/end, so an unsampled
        #: nested stage costs integer arithmetic, not method dispatch.
        self._light_depth = 0
        self._histogram: Optional[Histogram] = None
        self._stage_children: Dict[str, BoundHistogram] = {}
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Record per-stage latency into *registry* (``pipeline_stage_us``)."""
        self._histogram = registry.histogram(
            "pipeline_stage_us",
            buckets=STAGE_LATENCY_BUCKETS_US,
            description="Wall-clock cost of one pipeline stage (microseconds)",
            label_names=("stage",),
        )
        self._stage_children.clear()

    # -- span lifecycle ----------------------------------------------------

    def span(
        self,
        name: str,
        logical_time: Optional[int] = None,
        **attributes: object,
    ) -> Span:
        """Open a span; use as a context manager around the stage's work."""
        return Span(self, name, logical_time, attributes or None)

    def begin(
        self,
        name: str,
        logical_time: Optional[int] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Open and start a span in one call — the hot-path twin of
        :meth:`span`.

        Callers pass a *pre-built* (and freely shared — spans never mutate
        it) attributes dict and must close with :meth:`end`, normally from
        a ``finally`` block.  This skips the context-manager protocol, the
        kwargs packing, and one method hop per span, which matters at
        hundreds of thousands of spans per second.  When the sampler
        skips the current trace, the return value is a shared token and
        the stage costs two integer updates.
        """
        # Sampling logic duplicated in _enter_span: this path must not
        # allocate anything for unsampled traces.
        if self._light_depth:
            self._light_depth += 1
            return _LIGHT_AS_SPAN
        if not self._stack:
            self._trace_count += 1
            if self._trace_count % self.sample_every:
                self._light_depth = 1
                return _LIGHT_AS_SPAN
        span = Span(self, name, logical_time, attributes)
        stack = self._stack
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        span.start = perf_counter()
        return span

    def begin_root(
        self,
        name: str,
        sampled: bool,
        logical_time: Optional[int] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Open a root span with a *forced* sampling decision.

        This is how a worker honors the facade's head-sampling choice
        carried in a :class:`TraceContext`: the local sampler is bypassed
        entirely, so the worker neither drops a trace the facade chose to
        record nor records one it chose to skip.  When a span is already
        active (the caller is not actually at a trace root) the enclosing
        trace's decision wins and this degrades to :meth:`begin`.
        Close with :meth:`end` either way.
        """
        if self._light_depth or self._stack:
            return self.begin(name, logical_time, attributes)
        self._trace_count += 1
        if not sampled:
            self._light_depth = 1
            return _LIGHT_AS_SPAN
        span = Span(self, name, logical_time, attributes)
        self._stack.append(span)
        span.start = perf_counter()
        return span

    def end(self, span: Span) -> None:
        """Close a span opened with :meth:`begin`."""
        if span is _LIGHT_AS_SPAN:
            self._light_depth -= 1
            return
        span.duration = perf_counter() - span.start
        self._finish(span)

    def _enter_span(self, span: Span) -> None:
        """Context-manager entry (`with tracer.span(...)`): same sampling
        decision as :meth:`begin`, recorded on the span's ``light`` flag."""
        if self._light_depth:
            self._light_depth += 1
            span.light = True
            return
        if not self._stack:
            self._trace_count += 1
            if self._trace_count % self.sample_every:
                self._light_depth = 1
                span.light = True
                return
        stack = self._stack
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        span.start = perf_counter()

    def _exit_span(self, span: Span) -> None:
        if span.light:
            self._light_depth -= 1
            return
        span.duration = perf_counter() - span.start
        self._finish(span)

    def _finish(self, span: Span) -> None:
        stack = self._stack
        # The synchronous pipeline closes spans LIFO; tolerate a mismatch
        # (e.g. an exception unwinding several stages) by popping to *span*.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if not stack:
            self._traces.append(span)
        self.completed_spans += 1
        histogram = self._histogram
        if histogram is not None:
            child = self._stage_children.get(span.name)
            if child is None:
                child = self._stage_children[span.name] = histogram.child(
                    (span.name,)
                )
            # The tracer is single-threaded by construction (see the class
            # docstring), so the relaxed observe is safe here.
            child.observe_relaxed(span.duration * 1e6)

    # -- inspection --------------------------------------------------------

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    @property
    def current_trace_id(self) -> Optional[int]:
        """Sequence number of the in-flight *sampled* trace, else ``None``.

        Trace ids count root spans since the last :meth:`clear`; the
        structured log stamps records with this id so a log line can be
        joined to the span tree that was active when it was emitted.
        Unsampled (light) traces report ``None`` — there is no recorded
        tree to join against.
        """
        if self._stack:
            return self._trace_count
        return None

    def recent(self) -> Tuple[Span, ...]:
        """The ring buffer of completed root spans, oldest first."""
        return tuple(self._traces)

    def export_json(self) -> List[JsonSpan]:
        """The ring buffer as JSON-able dicts (for files and the CLI)."""
        return [span.to_dict() for span in self._traces]

    def stage_summary(self) -> Dict[str, Tuple[int, float]]:
        """Per-stage ``(count, mean_us)`` from the bound histogram."""
        histogram = self._histogram
        if histogram is None:
            return {}
        out: Dict[str, Tuple[int, float]] = {}
        for labels in histogram.series_labels():
            __, total, count = histogram.snapshot(labels)
            mean = total / count if count else 0.0
            out[labels[0]] = (count, mean)
        return out

    def clear(self) -> None:
        """Drop recorded traces (the stack is left to unwind naturally)."""
        self._traces.clear()
        self.completed_spans = 0
        self._trace_count = 0


def is_recorded(span: Span) -> bool:
    """True when *span* is a real recorded span, not the sampler's token."""
    return span is not _LIGHT_AS_SPAN and not span.light


class TraceAssembler:
    """Facade-side stitching of worker span batches into logical traces.

    The facade makes the head-sampling decision when a wave of events
    leaves for the shards (:meth:`begin`); each shard that receives part
    of the wave opens its own pipeline root span under the wave's
    :class:`TraceContext` and ships the completed tree back on its next
    stats/flush frame.  :meth:`add_batch` reattaches those trees under
    the originating wave, so one logical trace ends up holding the spans
    of every shard the wave touched.

    The assembler mirrors the tracer's one-in-``sample_every`` cadence
    (the decision is made *here*, once per wave — workers honor it
    verbatim), keeps a bounded window of assembled traces, and counts
    what it could not place: ``orphaned`` batches referencing unknown or
    evicted traces, and ``evicted`` traces pushed out of the window.
    """

    def __init__(
        self,
        max_traces: int = 64,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
    ) -> None:
        self.sample_every = max(1, sample_every)
        self.max_traces = max_traces
        self._count = 0
        self._traces: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self.orphaned = 0
        self.evicted = 0

    def begin(self, op: str) -> TraceContext:
        """Open a logical trace for one ship wave; returns its context.

        Mirrors :class:`Tracer` head sampling: one wave in
        ``sample_every`` is recorded (the tracer records trace number
        ``k`` when ``k % sample_every == 0``, and so does this).
        """
        self._count += 1
        sampled = self._count % self.sample_every == 0
        trace_id = f"t{self._count:06d}"
        context = TraceContext(trace_id, f"{trace_id}.root", sampled)
        if sampled:
            self._traces[trace_id] = {
                "trace_id": trace_id,
                "op": op,
                "root_span_id": context.parent_span_id,
                "spans": [],
            }
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)
                self.evicted += 1
        return context

    def add_batch(self, batch: Dict[str, object]) -> bool:
        """Attach one shipped worker span tree; False if it had no home.

        A batch carries ``trace`` (trace id), ``parent`` (the span id the
        worker parented under — must be the trace's root span for correct
        linkage), ``shard``, and ``span`` (the worker root span's
        ``to_dict`` tree).
        """
        trace = self._traces.get(str(batch.get("trace")))
        if trace is None or batch.get("parent") != trace["root_span_id"]:
            self.orphaned += 1
            return False
        cast(List[Dict[str, object]], trace["spans"]).append(
            {"shard": batch.get("shard"), "span": batch.get("span")}
        )
        return True

    def traces(self) -> Tuple[Dict[str, object], ...]:
        """Assembled traces, oldest first (only sampled waves appear)."""
        return tuple(self._traces.values())

    def shards_of(self, trace: Dict[str, object]) -> Tuple[int, ...]:
        """The distinct shard ids contributing spans to one trace."""
        spans = cast(List[Dict[str, object]], trace["spans"])
        return tuple(sorted({cast(int, entry["shard"]) for entry in spans}))

    def render(self, trace: Dict[str, object]) -> str:
        """A one-trace tree rendering for the CLI."""
        lines = [
            f"{trace['trace_id']} {trace['op']} "
            f"shards={list(self.shards_of(trace))}"
        ]
        for entry in cast(List[Dict[str, object]], trace["spans"]):
            span = cast(JsonSpan, entry["span"])
            lines.append(f"  shard {entry['shard']}:")
            lines.extend(
                "    " + line for line in _render_json_span(span, 0)
            )
        return "\n".join(lines)


def _render_json_span(span: JsonSpan, indent: int) -> List[str]:
    duration = span.get("duration_us", 0.0)
    time_part = (
        f" t={span['logical_time']}" if "logical_time" in span else ""
    )
    lines = [f"{'  ' * indent}{span.get('name')}{time_part} ({duration}us)"]
    for child in cast(List[JsonSpan], span.get("children", [])):
        lines.extend(_render_json_span(child, indent + 1))
    return lines
