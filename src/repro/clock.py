"""Logical clock used throughout the reproduction.

All timestamps in events, state transition histories, and deadlines are
*ticks* of a :class:`LogicalClock` rather than wall-clock time.  This keeps
every example, test, and benchmark deterministic: the epidemic scenario of
Figure 1 unfolds over simulated hours, the deadline comparison of the
Section 5.4 example compares tick values, and latency benchmarks count
pipeline hops in ticks.

The clock is strictly monotonic: :meth:`LogicalClock.tick` always moves time
forward by at least one unit, and :meth:`LogicalClock.advance_to` refuses to
travel backwards.
"""

from __future__ import annotations

from .errors import ReproError


class ClockError(ReproError):
    """The logical clock was asked to move backwards."""


class LogicalClock:
    """A deterministic, strictly monotonic tick counter.

    >>> clock = LogicalClock()
    >>> clock.now()
    0
    >>> clock.tick()
    1
    >>> clock.advance(10)
    11
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start}")
        self._now = start
        self._listeners = []

    def now(self) -> int:
        """Return the current tick without advancing."""
        return self._now

    def on_advance(self, listener) -> None:
        """Register ``listener(now)`` to run whenever time moves forward.

        This is what timer services hook; listeners run after the move,
        with the new time, in registration order.
        """
        self._listeners.append(listener)

    def _moved(self) -> int:
        for listener in list(self._listeners):
            listener(self._now)
        return self._now

    def tick(self) -> int:
        """Advance time by one tick and return the new time."""
        self._now += 1
        return self._moved()

    def advance(self, ticks: int) -> int:
        """Advance time by *ticks* (must be positive) and return the new time."""
        if ticks <= 0:
            raise ClockError(f"advance requires a positive tick count, got {ticks}")
        self._now += ticks
        return self._moved()

    def advance_to(self, when: int) -> int:
        """Jump forward to absolute time *when* (must not be in the past)."""
        if when < self._now:
            raise ClockError(f"cannot move clock backwards from {self._now} to {when}")
        moved = when > self._now
        self._now = when
        return self._moved() if moved else self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogicalClock(now={self._now})"
