"""Deterministic identifier generation.

CMI objects (schemas, instances, contexts, events, work items) all carry
string identifiers.  The paper's prototype used opaque ids from FlowMark and
CEDMOS; for reproducibility we generate ids deterministically from a
per-prefix counter, so two runs of the same workload produce identical id
sequences and benchmark output is stable.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, Iterator


class IdFactory:
    """Produces ids of the form ``<prefix>-<n>`` with a counter per prefix.

    The factory is thread-safe so event source agents running on different
    threads may share one factory, although the reference implementation is
    single-threaded.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Iterator[int]] = {}
        self._lock = threading.Lock()

    def new(self, prefix: str) -> str:
        """Return the next id for *prefix*, e.g. ``new("proc")`` -> ``proc-1``.

        Lock-free on the hot path: ``dict.setdefault`` and ``next`` on an
        ``itertools.count`` are both atomic under the CPython GIL, so two
        threads can never observe the same id.  The lock is only taken by
        :meth:`reset`.
        """
        counter = self._counters.get(prefix)
        if counter is None:
            counter = self._counters.setdefault(prefix, itertools.count(1))
        return f"{prefix}-{next(counter)}"

    def reset(self) -> None:
        """Forget all counters (used between benchmark repetitions)."""
        with self._lock:
            self._counters.clear()


_default_factory = IdFactory()


def new_id(prefix: str) -> str:
    """Return a fresh id from the process-wide default factory."""
    return _default_factory.new(prefix)


def reset_ids() -> None:
    """Reset the process-wide default factory (test isolation helper)."""
    _default_factory.reset()
