"""Pipeline latency probes (QE4).

The Figure 5 pipeline is: primitive event at the CORE/Coordination engine
-> event source agent -> detector agent (operator DAG) -> delivery agent
-> participant queue.  Because the reproduction's pipeline is synchronous,
logical-clock latency is zero by construction; what QE4 measures is the
*wall-clock processing cost* per primitive event as the awareness DAG gets
deeper, plus the hop count (DAG depth) as the structural latency bound a
distributed deployment would pay per hop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Tuple

#: Shared per-stage latency bucket edges, in microseconds.  The pipeline
#: reports costs as us/event (see :class:`LatencySummary.per_event_us`);
#: the observability tracer's stage histograms reuse the same convention
#: so QE4 rows and `pipeline_stage_us` series read on one scale.
STAGE_LATENCY_BUCKETS_US: Tuple[float, ...] = (
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    50_000.0,
)


@dataclass(frozen=True)
class LatencySummary:
    """Aggregated wall-clock cost of processing a batch of events."""

    events: int
    total_seconds: float
    dag_depth: int

    @property
    def per_event_us(self) -> float:
        if self.events == 0:
            return 0.0
        return self.total_seconds / self.events * 1e6

    def as_row(self) -> Tuple:
        return (
            self.dag_depth,
            self.events,
            f"{self.per_event_us:.1f}",
        )


#: Header row matching :meth:`LatencySummary.as_row`.
LATENCY_HEADERS = ("DAG depth", "events", "us/event")


class LatencyProbe:
    """Times a callable that injects a batch of primitive events."""

    def __init__(self, dag_depth: int) -> None:
        self.dag_depth = dag_depth
        self._samples: List[Tuple[int, float]] = []

    def measure(self, inject: Callable[[], int]) -> LatencySummary:
        """Run *inject* (returns event count) under a wall-clock timer."""
        start = time.perf_counter()
        events = inject()
        elapsed = time.perf_counter() - start
        self._samples.append((events, elapsed))
        return LatencySummary(
            events=events, total_seconds=elapsed, dag_depth=self.dag_depth
        )

    def summary(self) -> LatencySummary:
        """Aggregate over all measured batches."""
        events = sum(n for n, __ in self._samples)
        total = sum(t for __, t in self._samples)
        return LatencySummary(
            events=events, total_seconds=total, dag_depth=self.dag_depth
        )
