"""Fixed-width table rendering for benchmark output.

Benchmarks print the rows a paper's evaluation section would report; this
keeps the rendering in one place so every table in ``bench_output.txt``
lines up the same way.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def render_table(
    headers: Sequence[object],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table.

    >>> print(render_table(("a", "b"), [(1, 22), (333, 4)]))
    a    | b
    -----+---
    1    | 22
    333  | 4
    """
    header_cells = [str(h) for h in headers]
    body = [[str(cell) for cell in row] for row in rows]
    columns = len(header_cells)
    for row in body:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    widths = [len(h) for h in header_cells]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: List[str]) -> str:
        return " | ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        ).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(header_cells))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in body)
    return "\n".join(lines)
