"""Information-overload and relevance scoring (QE1).

The workload generator labels the run with *ground truth*: which pieces of
information genuinely mattered, and to whom.  Each awareness mechanism's
:class:`~repro.baselines.base.Delivery` records are scored against it:

* **precision** — of everything delivered, what fraction was relevant to
  its receiver ("with too much information, users must deal with an
  information overload that adds to their work and masks important
  information");
* **recall** — of everything relevant, what fraction actually reached the
  participant who needed it ("if given too little or improperly targeted
  information, users will act inappropriately or be less effective");
* **deliveries per participant** — the raw attention cost;
* **overload factor** — delivered/needed ratio; 1.0 is the ideal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..baselines.base import Delivery
from ..errors import WorkloadError


@dataclass(frozen=True)
class RelevantFact:
    """One piece of information that genuinely mattered.

    ``key`` must use the same vocabulary the delivery adapters use, so
    delivered information and needed information can be matched.
    ``audience`` is the set of participant ids who needed it.
    """

    key: Tuple
    audience: FrozenSet[str]
    time: int = 0

    def pairs(self) -> Set[Tuple[str, Tuple]]:
        return {(participant, self.key) for participant in self.audience}


class GroundTruth:
    """The run's relevance labels: who needed what."""

    def __init__(self, participants: Iterable[str]) -> None:
        self.participants: Tuple[str, ...] = tuple(participants)
        if not self.participants:
            raise WorkloadError("ground truth requires at least one participant")
        self._facts: List[RelevantFact] = []

    def add_fact(
        self, key: Tuple, audience: Iterable[str], time: int = 0
    ) -> RelevantFact:
        audience_set = frozenset(audience)
        unknown = audience_set - set(self.participants)
        if unknown:
            raise WorkloadError(
                f"fact audience references unknown participants {sorted(unknown)}"
            )
        fact = RelevantFact(key=key, audience=audience_set, time=time)
        self._facts.append(fact)
        return fact

    def facts(self) -> Tuple[RelevantFact, ...]:
        return tuple(self._facts)

    def relevant_pairs(self) -> Set[Tuple[str, Tuple]]:
        pairs: Set[Tuple[str, Tuple]] = set()
        for fact in self._facts:
            pairs.update(fact.pairs())
        return pairs

    def needed_by(self, participant_id: str) -> int:
        return sum(
            1 for fact in self._facts if participant_id in fact.audience
        )


@dataclass(frozen=True)
class MechanismScore:
    """The scored performance of one awareness mechanism."""

    mechanism: str
    deliveries: int
    unique_pairs: int
    true_positives: int
    relevant_pairs: int
    participants: int
    #: Mean ticks between a relevant fact occurring and the earliest
    #: delivery of it to a participant who needed it (None: no matches).
    mean_delay: Optional[float] = None

    @property
    def precision(self) -> float:
        if self.unique_pairs == 0:
            return 0.0
        return self.true_positives / self.unique_pairs

    @property
    def recall(self) -> float:
        if self.relevant_pairs == 0:
            return 0.0
        return self.true_positives / self.relevant_pairs

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2 * p * r / (p + r)

    @property
    def deliveries_per_participant(self) -> float:
        if self.participants == 0:
            return 0.0
        return self.deliveries / self.participants

    @property
    def overload_factor(self) -> float:
        """Delivered info per unit of needed info (1.0 = perfectly lean)."""
        if self.relevant_pairs == 0:
            return float("inf") if self.deliveries else 0.0
        return self.deliveries / self.relevant_pairs

    def as_row(self) -> Tuple:
        delay = "-" if self.mean_delay is None else f"{self.mean_delay:.1f}"
        return (
            self.mechanism,
            self.deliveries,
            f"{self.deliveries_per_participant:.1f}",
            f"{self.precision:.2f}",
            f"{self.recall:.2f}",
            f"{self.f1:.2f}",
            f"{self.overload_factor:.1f}x",
            delay,
        )


#: Header row matching :meth:`MechanismScore.as_row`.
SCORE_HEADERS = (
    "mechanism",
    "deliveries",
    "per-user",
    "precision",
    "recall",
    "F1",
    "overload",
    "delay",
)


def score_mechanism(
    mechanism: str,
    deliveries: Iterable[Delivery],
    truth: GroundTruth,
) -> MechanismScore:
    """Score one mechanism's deliveries against the ground truth.

    The delay column compares each matched (participant, key) pair's
    *earliest* delivery time against the fact's occurrence time — polling
    mechanisms (the log-analysis baseline) pay a visible lag here.
    """
    delivery_list = list(deliveries)
    delivered_pairs = {(d.participant_id, d.key) for d in delivery_list}
    relevant = truth.relevant_pairs()
    matched = delivered_pairs & relevant

    mean_delay: Optional[float] = None
    if matched:
        fact_times = {fact.key: fact.time for fact in truth.facts()}
        earliest: Dict[Tuple[str, Tuple], int] = {}
        for delivery in delivery_list:
            pair = (delivery.participant_id, delivery.key)
            if pair not in matched:
                continue
            if pair not in earliest or delivery.time < earliest[pair]:
                earliest[pair] = delivery.time
        delays = [
            earliest[pair] - fact_times[pair[1]] for pair in matched
        ]
        mean_delay = sum(delays) / len(delays)

    return MechanismScore(
        mechanism=mechanism,
        deliveries=len(delivery_list),
        unique_pairs=len(delivered_pairs),
        true_positives=len(matched),
        relevant_pairs=len(relevant),
        participants=len(truth.participants),
        mean_delay=mean_delay,
    )
