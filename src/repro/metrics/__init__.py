"""Measurement utilities for the reproduction benchmarks.

The paper's central quantitative *claim* (Sections 1, 2, 7) is qualitative
in the original: customized awareness "minimizes information overloading"
and increases "the relevance of the information provided".  This package
turns that into measurable quantities:

* :mod:`repro.metrics.overload` — ground-truth relevance labelling,
  precision/recall/F1 of delivered information, deliveries per participant,
  and the overload factor, per awareness mechanism;
* :mod:`repro.metrics.latency` — pipeline hop/latency probes for the QE4
  benchmark;
* :mod:`repro.metrics.report` — fixed-width table rendering so benchmark
  output reads like the rows a paper would report.
"""

from .latency import LatencyProbe, LatencySummary
from .overload import GroundTruth, MechanismScore, RelevantFact, score_mechanism
from .report import render_table

__all__ = [
    "GroundTruth",
    "LatencyProbe",
    "LatencySummary",
    "MechanismScore",
    "RelevantFact",
    "render_table",
    "score_mechanism",
]
