"""The CMI Enactment System: the Figure 5 server.

One :class:`EnactmentSystem` aggregates the four engines over one logical
clock, one event bus, and one persistent delivery queue:

* **CORE Engine** — schemas, instances, contexts, roles;
* **Coordination Engine** — enactment operations and routing (the
  IBM-FlowMark role in the prototype);
* **Service Engine** — service registry, agreements, invocation;
* **Awareness Engine** — event sources, detectors, delivery.

Clients attach via :meth:`participant_client` and :meth:`designer_client`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..clock import LogicalClock
from ..coordination.engine import CoordinationEngine
from ..core.engine import CoreEngine
from ..core.roles import Participant
from ..events.bus import EventBus
from ..events.queues import DeliveryQueue, MemoryDeliveryQueue
from ..awareness.engine import AwarenessEngine
from ..observability import MetricsRegistry
from ..service.engine import ServiceEngine
from .clients import DesignerClient, ParticipantClient
from .monitor import ProcessMonitor


class EnactmentSystem:
    """The federated CMI server: four engines acting as one."""

    def __init__(
        self,
        clock: Optional[LogicalClock] = None,
        queue: Optional[DeliveryQueue] = None,
        journal: Optional["Journal"] = None,
        isolate_errors: bool = False,
    ) -> None:
        self.clock = clock or LogicalClock()
        #: One registry per system: every Figure 5 agent it owns registers
        #: its instruments here, and :meth:`stats` is a view over them.
        #: Per-system (not process-wide) so concurrent systems in one
        #: process — the norm in tests — never share counters.
        self.metrics = MetricsRegistry()
        self.bus = EventBus(isolate_errors=isolate_errors, metrics=self.metrics)
        self.core = CoreEngine(self.clock)
        self.journal = journal
        if journal is not None:
            from .journal import attach_journal

            attach_journal(self.core, journal)
        self.coordination = CoordinationEngine(self.core)
        self.service = ServiceEngine(self.coordination)
        self.awareness = AwarenessEngine(
            self.core,
            bus=self.bus,
            queue=queue if queue is not None else MemoryDeliveryQueue(),
            metrics=self.metrics,
        )
        self.monitor = ProcessMonitor(self.core)
        self._participant_clients: Dict[str, ParticipantClient] = {}
        self.metrics.callback_gauge(
            "processes_started",
            lambda: len(self.core.top_level_processes()),
            "Top-level process instances started on the CORE engine",
        )
        self.metrics.callback_gauge(
            "instances_total",
            lambda: len(self.core.instances()),
            "Process instances (all nesting levels) on the CORE engine",
        )
        self.metrics.callback_gauge(
            "work_items_total",
            lambda: len(self.coordination.worklists.all_items()),
            "Work items created across all worklists",
        )

    # -- client attach -------------------------------------------------------------

    def participant_client(self, participant: Participant) -> ParticipantClient:
        """The run-time client suite for one participant (cached)."""
        client = self._participant_clients.get(participant.participant_id)
        if client is None:
            client = ParticipantClient(self, participant)
            self._participant_clients[participant.participant_id] = client
        return client

    def designer_client(self, designer_name: str = "designer") -> DesignerClient:
        """A build-time client suite (process + awareness specification)."""
        return DesignerClient(self, designer_name)

    # -- convenience ----------------------------------------------------------------

    def register_participant(self, participant: Participant) -> Participant:
        return self.core.roles.register_participant(participant)

    def stats(self) -> Dict[str, int]:
        """System-wide counters for the FIG5 architecture benchmark.

        A thin view over :attr:`metrics`: every value reads a registry
        instrument (counters the agents increment on the hot path, plus
        the collection-time gauges registered above).
        """
        stats = dict(self.awareness.stats())
        stats.update(
            {
                "bus_events_published": self.bus.published_count(),
                "bus_events_delivered": self.bus.delivered_count(),
                "bus_events_failed": self.bus.failed_count(),
                "processes_started": int(self.metrics.value("processes_started")),
                "instances_total": int(self.metrics.value("instances_total")),
                "work_items_total": int(self.metrics.value("work_items_total")),
            }
        )
        return stats
