"""The CMI Enactment System: the Figure 5 server.

One :class:`EnactmentSystem` aggregates the four engines over one logical
clock, one event bus, and one persistent delivery queue:

* **CORE Engine** — schemas, instances, contexts, roles;
* **Coordination Engine** — enactment operations and routing (the
  IBM-FlowMark role in the prototype);
* **Service Engine** — service registry, agreements, invocation;
* **Awareness Engine** — event sources, detectors, delivery.

Clients attach via :meth:`participant_client` and :meth:`designer_client`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..clock import LogicalClock
from ..coordination.engine import CoordinationEngine
from ..coordination.timers import TimerService
from ..core.engine import CoreEngine
from ..core.roles import Participant
from ..events.bus import EventBus
from ..events.queues import DeliveryQueue, MemoryDeliveryQueue
from ..awareness.engine import AwarenessEngine
from ..observability import MetricsRegistry
from ..service.engine import ServiceEngine
from .clients import DesignerClient, ParticipantClient
from .monitor import ProcessMonitor


class EnactmentSystem:
    """The federated CMI server: four engines acting as one."""

    def __init__(
        self,
        clock: Optional[LogicalClock] = None,
        queue: Optional[DeliveryQueue] = None,
        journal: Optional["Journal"] = None,
        isolate_errors: bool = False,
        name: str = "cmi",
        share_plans: bool = True,
    ) -> None:
        #: The system's federation-wide identity: telemetry events carry
        #: it as ``systemId`` and the federation health view keys on it.
        self.name = name
        self.clock = clock or LogicalClock()
        #: One registry per system: every Figure 5 agent it owns registers
        #: its instruments here, and :meth:`stats` is a view over them.
        #: Per-system (not process-wide) so concurrent systems in one
        #: process — the norm in tests — never share counters.
        self.metrics = MetricsRegistry()
        self.bus = EventBus(isolate_errors=isolate_errors, metrics=self.metrics)
        self.core = CoreEngine(self.clock)
        self.journal = journal
        if journal is not None:
            from .journal import attach_journal

            attach_journal(self.core, journal)
        self.coordination = CoordinationEngine(self.core)
        self.service = ServiceEngine(self.coordination)
        self.awareness = AwarenessEngine(
            self.core,
            bus=self.bus,
            queue=queue if queue is not None else MemoryDeliveryQueue(),
            metrics=self.metrics,
            share_plans=share_plans,
        )
        self.monitor = ProcessMonitor(self.core)
        #: The system-wide timer service (deadline monitors and awareness
        #: samplers share it; standalone TimerService instances still work).
        self.timers = TimerService(self.clock)
        self._participant_clients: Dict[str, ParticipantClient] = {}
        self._designer_clients: Dict[str, DesignerClient] = {}
        self.metrics.callback_gauge(
            "processes_started",
            lambda: len(self.core.top_level_processes()),
            "Top-level process instances started on the CORE engine",
        )
        self.metrics.callback_gauge(
            "instances_total",
            lambda: len(self.core.instances()),
            "Process instances (all nesting levels) on the CORE engine",
        )
        self.metrics.callback_gauge(
            "work_items_total",
            lambda: len(self.coordination.worklists.all_items()),
            "Work items created across all worklists",
        )
        self.metrics.callback_gauge(
            "timer_backlog",
            self.timers.pending_count,
            "Timers scheduled on the system timer service, not yet fired",
        )
        self.metrics.multi_callback_gauge(
            "work_items_open",
            self._open_items_by_participant,
            "Open work items offered to / claimed by each participant",
            ("participant",),
        )
        self.metrics.multi_callback_gauge(
            "queue_depth",
            self._queue_depth_by_participant,
            "Pending awareness notifications per participant queue",
            ("participant",),
        )
        self.metrics.callback_gauge(
            "delivery_lag",
            self._delivery_lag,
            "Ticks the oldest pending notification has waited undelivered",
        )
        self.metrics.callback_gauge(
            "journal_divergence",
            lambda: float(journal.audit_only_count()) if journal else 0.0,
            "Journal records recovery would refuse (audit-only surface)",
        )

    # -- collection-time gauge callbacks ---------------------------------------------

    def _open_items_by_participant(self) -> Dict[Tuple[str, ...], float]:
        out: Dict[Tuple[str, ...], float] = {}
        for item in self.coordination.worklists.open_items():
            if item.claimed_by is not None:
                holders = (item.claimed_by,)
            else:
                holders = tuple(item.candidates)
            for participant in holders:
                key = (participant.participant_id,)
                out[key] = out.get(key, 0.0) + 1.0
        return out

    def _queue_depth_by_participant(self) -> Dict[Tuple[str, ...], float]:
        counts = self.awareness.delivery.queue.pending_by_participant()
        return {(pid,): float(count) for pid, count in counts.items()}

    def _delivery_lag(self) -> float:
        oldest = self.awareness.delivery.queue.oldest_pending_time()
        if oldest is None:
            return 0.0
        return float(max(0, self.clock.now() - oldest))

    # -- client attach -------------------------------------------------------------

    def participant_client(self, participant: Participant) -> ParticipantClient:
        """The run-time client suite for one participant (cached)."""
        client = self._participant_clients.get(participant.participant_id)
        if client is None:
            client = ParticipantClient(self, participant)
            self._participant_clients[participant.participant_id] = client
        return client

    def designer_client(self, designer_name: str = "designer") -> DesignerClient:
        """A build-time client suite (process + awareness specification).

        Cached per designer name, mirroring :meth:`participant_client`:
        repeated attaches from the same designer share one client.
        """
        client = self._designer_clients.get(designer_name)
        if client is None:
            client = DesignerClient(self, designer_name)
            self._designer_clients[designer_name] = client
        return client

    # -- convenience ----------------------------------------------------------------

    def register_participant(self, participant: Participant) -> Participant:
        return self.core.roles.register_participant(participant)

    def stats(self) -> Dict[str, int]:
        """System-wide counters for the FIG5 architecture benchmark.

        A thin view over :attr:`metrics`: every value reads a registry
        instrument (counters the agents increment on the hot path, plus
        the collection-time gauges registered above).
        """
        stats = dict(self.awareness.stats())
        stats.update(
            {
                "bus_events_published": self.bus.published_count(),
                "bus_events_delivered": self.bus.delivered_count(),
                "bus_events_failed": self.bus.failed_count(),
                "processes_started": int(self.metrics.value("processes_started")),
                "instances_total": int(self.metrics.value("instances_total")),
                "work_items_total": int(self.metrics.value("work_items_total")),
                "timer_backlog": int(self.metrics.value("timer_backlog")),
                "queue_depth": self.awareness.delivery.queue.pending_count(),
                "delivery_lag": int(self.metrics.value("delivery_lag")),
            }
        )
        return stats
