"""The CMI system architecture (Figure 5, Section 6.1).

"The CMI system follows a client-server approach with the CMI Enactment
System as the server ... a collection of communicating agents acting as a
single server.  The components and their interconnections largely resemble
the interrelationships between sub-models in CMM."

* :class:`~repro.federation.system.EnactmentSystem` — the server: CORE
  engine + Coordination engine + Service engine + Awareness engine on one
  shared clock and event bus;
* :class:`~repro.federation.clients.ParticipantClient` — the run-time
  client suite: worklist, process monitoring tool, awareness viewer;
* :class:`~repro.federation.clients.DesignerClient` — the build-time
  client suite: process specification and awareness specification tools;
* :class:`~repro.federation.monitor.ProcessMonitor` — the monitoring tool
  (and the "manager sees everything" awareness baseline of Section 2).
"""

from .clients import DesignerClient, ParticipantClient
from .monitor import ProcessMonitor
from .system import EnactmentSystem

__all__ = [
    "DesignerClient",
    "EnactmentSystem",
    "ParticipantClient",
    "ProcessMonitor",
]
