"""CMI clients (Figure 5): participant and designer suites.

* The **Client for Participants** "contains a variant of the traditional
  WfMS worklist, a process monitoring tool, and a viewer for delivered
  awareness information."
* The **Client for Designers** "is a suite of build-time tools that
  includes the Awareness Specification Tool" (plus process and service
  specification).

Both are thin facades: they bind one user (or one designer session) to the
corresponding engine surfaces of the enactment system, mirroring how the
GUI tools of the prototype sat on the server's agent interfaces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from ..awareness.specification import SpecificationWindow
from ..awareness.detector import DetectorAgent
from ..awareness.viewer import AwarenessViewer
from ..coordination.worklist import WorkItem, Worklist
from ..core.instances import ProcessInstance
from ..core.roles import Participant
from ..core.schema import ActivitySchema, ProcessActivitySchema
from ..errors import WorklistError
from ..service.model import ServiceDefinition

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .system import EnactmentSystem


class ParticipantClient:
    """Run-time suite: worklist + monitor + awareness viewer for one user."""

    def __init__(self, system: "EnactmentSystem", participant: Participant):
        self.system = system
        self.participant = participant
        self.worklist: Worklist = system.coordination.worklist_for(participant)
        self.viewer: AwarenessViewer = system.awareness.viewer_for(participant)

    # -- session -----------------------------------------------------------------

    def sign_on(self) -> None:
        self.participant.sign_on()

    def sign_off(self) -> None:
        self.participant.sign_off()

    # -- worklist operations -----------------------------------------------------

    def work_items(self) -> Tuple[WorkItem, ...]:
        return self.worklist.items()

    def claim(self, item: WorkItem) -> None:
        self.system.coordination.claim(item, self.participant)

    def complete(self, item: WorkItem) -> None:
        if item.claimed_by != self.participant:
            raise WorklistError(
                f"{self.participant.name!r} cannot complete a work item "
                f"claimed by {item.claimed_by.name if item.claimed_by else 'nobody'!r}"
            )
        self.system.coordination.complete_activity(
            item.activity, user=self.participant.name
        )

    def claim_and_complete_all(self) -> int:
        """Drain the worklist (workload-driver convenience); returns count."""
        done = 0
        while True:
            items = [i for i in self.work_items() if i.claimed_by is None]
            if not items:
                return done
            for item in items:
                self.claim(item)
                self.complete(item)
                done += 1

    # -- monitoring --------------------------------------------------------------

    def monitor_view(self, process: ProcessInstance) -> str:
        return self.system.monitor.status_tree(process)

    # -- awareness ----------------------------------------------------------------

    def check_awareness(self) -> Tuple:
        """Retrieve pending awareness notifications from the viewer."""
        return self.viewer.retrieve()


class DesignerClient:
    """Build-time suite: process, service, and awareness specification."""

    def __init__(self, system: "EnactmentSystem", designer_name: str):
        self.system = system
        self.designer_name = designer_name

    # -- process specification ------------------------------------------------------

    def register_process(self, schema: ProcessActivitySchema) -> ProcessActivitySchema:
        """Validate + register a process schema with the CORE engine."""
        self.system.core.register_schema(schema)
        return schema

    def register_activity(self, schema: ActivitySchema) -> ActivitySchema:
        self.system.core.register_schema(schema)
        return schema

    # -- service specification ---------------------------------------------------------

    def advertise_service(self, service: ServiceDefinition) -> ServiceDefinition:
        return self.system.service.registry.advertise(service)

    # -- awareness specification (the Awareness Specification Tool) ---------------------

    def open_awareness_window(self, process_schema_id: str) -> SpecificationWindow:
        """Open a specification window for one process schema (Figure 6)."""
        return self.system.awareness.create_window(process_schema_id)

    def deploy_awareness(self, window: SpecificationWindow) -> DetectorAgent:
        """Transform the window's schemata into a live detector agent."""
        return self.system.awareness.deploy(window)
