"""The process monitoring tool (Section 6.1 client suite).

WfMSs assume managers "must know the status of all the activities in the
entire process, i.e., monitor the entire process" (Section 2).  The
monitor provides that view: a live status table over a process instance
tree, plus the full state-change history — which also makes it the
*monitor-everything* awareness baseline for the QE1 benchmark.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Tuple

from ..core.context import ContextChange
from ..core.engine import CoreEngine
from ..core.instances import ActivityInstance, ActivityStateChange, ProcessInstance


class ProcessMonitor:
    """Observes every activity state change and context field change.

    The activity log is indexed as it grows: a parallel tick list keyed
    for :func:`bisect` bounds the time-window queries, and a per-instance
    index makes the process-subtree view proportional to its own history
    instead of the whole audit trail.
    """

    def __init__(self, core: CoreEngine) -> None:
        self.core = core
        self._log: List[ActivityStateChange] = []
        #: Tick of each log entry; monotone non-decreasing (the clock only
        #: moves forward), so time bounds are binary-searchable.
        self._times: List[int] = []
        #: Log positions per activity instance id.
        self._by_instance: Dict[str, List[int]] = {}
        self._context_log: List["ContextChange"] = []
        core.on_activity_change(self._observe)
        core.on_context_change(self._context_log.append)

    def _observe(self, change: ActivityStateChange) -> None:
        index = len(self._log)
        self._log.append(change)
        self._times.append(change.time)
        self._by_instance.setdefault(change.activity_instance_id, []).append(
            index
        )

    # -- log access ---------------------------------------------------------------

    def log(self) -> Tuple[ActivityStateChange, ...]:
        """All observed state changes, in order."""
        return tuple(self._log)

    def context_log(self) -> Tuple["ContextChange", ...]:
        """All observed context field changes, in order."""
        return tuple(self._context_log)

    def log_for_process(
        self, process: ProcessInstance
    ) -> Tuple[ActivityStateChange, ...]:
        """Changes of a process instance and all of its descendants.

        Cost is proportional to the subtree's own history: the changes are
        gathered from the per-instance index and merged back into log
        order, never scanning unrelated instances' entries.
        """
        ids = {process.instance_id}
        ids.update(d.instance_id for d in process.descendants())
        indices: List[int] = []
        for instance_id in ids:
            indices.extend(self._by_instance.get(instance_id, ()))
        indices.sort()
        return tuple(self._log[i] for i in indices)

    def query(
        self,
        new_state: Optional[str] = None,
        user: Optional[str] = None,
        since: Optional[int] = None,
        until: Optional[int] = None,
    ) -> Tuple[ActivityStateChange, ...]:
        """The WfMC-style monitoring query API over the audit trail.

        All filters conjoin; ``since``/``until`` are inclusive tick bounds.
        This is exactly the interface the Section 2 "specialized awareness
        applications that analyze process monitoring logs" build on.

        Time bounds are resolved by binary search over the tick-ordered
        log, so a narrow window over a long audit trail only pays for the
        entries inside the window.
        """
        lo = bisect_left(self._times, since) if since is not None else 0
        hi = (
            bisect_right(self._times, until)
            if until is not None
            else len(self._log)
        )
        results = []
        for index in range(lo, hi):
            change = self._log[index]
            if new_state is not None and change.new_state != new_state:
                continue
            if user is not None and change.user != user:
                continue
            results.append(change)
        return tuple(results)

    # -- status view -----------------------------------------------------------------

    def status_tree(self, process: ProcessInstance, indent: int = 0) -> str:
        """Indented live status of a process instance tree."""
        pad = "  " * indent
        lines = [
            f"{pad}{process.schema.name} [{process.instance_id}] "
            f"= {process.current_state}"
        ]
        for name, child in process.children.items():
            if isinstance(child, ProcessInstance):
                lines.append(self.status_tree(child, indent + 1))
            else:
                performer = child.performer.name if child.performer else "-"
                lines.append(
                    f"{pad}  {name}: {child.schema.name} = "
                    f"{child.current_state} (performer: {performer})"
                )
        return "\n".join(lines)

    def timeline(self, process: ProcessInstance) -> str:
        """Figure 1-style rendering: one line per activity with its
        running interval in clock ticks."""
        rows: List[str] = [f"Timeline of {process.schema.name}:"]
        instances: List[ActivityInstance] = [process]
        instances.extend(process.descendants())
        for instance in instances:
            started: Optional[int] = None
            closed: Optional[int] = None
            for change in instance.state_machine.history:
                if change.new_state == "Running" and started is None:
                    started = change.time
                if change.new_state in ("Completed", "Terminated"):
                    closed = change.time
            if started is None:
                continue
            end = str(closed) if closed is not None else "…"
            rows.append(
                f"  t={started:>4} ─ {end:>4}  {instance.schema.name}"
            )
        return "\n".join(rows)
