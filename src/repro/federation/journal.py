"""Durable enactment: audit journaling and recovery.

The paper's prototype ran its processes on IBM FlowMark — a *persistent*
commercial WfMS: enactment state survived server restarts.  Our
from-scratch substrate provides the same guarantee through a write-ahead
audit journal:

* a :class:`Journal` records every state-affecting CORE operation —
  participant/role definitions, schema registrations (as interchange
  payloads, reusing :mod:`repro.core.serialization`), instance creations,
  activity state changes, context creation/sharing/destruction, field
  assignments, and scoped-role creation;
* :func:`recover_core` replays a journal into a fresh
  :class:`~repro.core.engine.CoreEngine`, reproducing instance trees,
  state machines (including histories), context contents, associations,
  and scoped-role membership.

Identifier determinism makes this simple: the CORE engine assigns ids from
per-prefix counters, so replaying the same creation sequence yields the
same ids, and journaled references resolve exactly.

Journal records are JSON-able dicts; :class:`Journal` keeps them in memory
and can persist to/load from a JSON-lines file.  Scoped-role *membership
changes after creation* go through :meth:`CoreEngine.create_scoped_role`'s
returned object and are outside the recoverable surface: the journal
records them (``scoped_role_membership``) so the audit trail is complete,
and :func:`recover_core` **refuses** a journal containing them — a clear
:class:`RecoveryError` instead of a silently diverging recovery — use
engine APIs for anything that must survive recovery.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from ..core.context import ContextChange
from ..core.engine import CoreEngine
from ..core.roles import Participant, ParticipantKind
from ..core.serialization import (
    ConditionRegistry,
    schema_from_dict,
    schema_to_dict,
)
from ..errors import ReproError


class RecoveryError(ReproError):
    """The journal could not be replayed."""


class Journal:
    """An append-only log of CORE operations."""

    def __init__(self) -> None:
        self._records: List[Dict[str, Any]] = []

    def append(self, record: Dict[str, Any]) -> None:
        self._records.append(record)

    def records(self) -> Tuple[Dict[str, Any], ...]:
        return tuple(self._records)

    def audit_only_count(self) -> int:
        """Records outside the recoverable surface (see module docstring).

        Currently the post-creation ``scoped_role_membership`` changes:
        they complete the audit trail but :func:`recover_core` refuses
        them, so a non-zero count means this journal can no longer be
        replayed — the basis of the ``journal_divergence`` health metric.
        """
        return sum(
            1
            for record in self._records
            if record.get("op") == "scoped_role_membership"
        )

    def __len__(self) -> int:
        return len(self._records)

    # -- persistence -------------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the journal as JSON lines."""
        with open(path, "w") as handle:
            for record in self._records:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "Journal":
        journal = cls()
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    journal.append(json.loads(line))
        return journal

    def save_frames(self, path: str) -> None:
        """Persist as a durability frame log.

        Same on-disk format as the shard write-ahead journals
        (:class:`~repro.durability.log.FrameLog`): length-prefixed wire
        frames, torn-tail tolerant, inspectable with ``repro journal``.
        Each CORE record is one frame.
        """
        from ..durability.log import FrameLog

        if os.path.exists(path):
            os.remove(path)
        with FrameLog(path, fsync_every=0) as log:
            for record in self._records:
                log.append(record)

    @classmethod
    def load_frames(cls, path: str) -> "Journal":
        """Load a :meth:`save_frames` file (replayable via
        :func:`recover_core` exactly like an in-memory journal)."""
        from ..durability.log import CONTROL_COMPACTED, read_file_frames

        journal = cls()
        for frame in read_file_frames(path):
            if frame.get("kind") == CONTROL_COMPACTED:
                continue
            journal.append(frame)
        return journal


def attach_journal(
    core: CoreEngine,
    journal: Optional[Journal] = None,
    conditions: Optional[ConditionRegistry] = None,
) -> Journal:
    """Instrument *core* so every state-affecting operation is journaled.

    Must be attached to a **fresh** engine (before any schemas, instances,
    or participants exist); replay correctness depends on the journal
    covering the engine's whole life.
    """
    if core.schemas() or core.instances() or core.roles.participants():
        raise RecoveryError(
            "attach_journal requires a fresh CORE engine (the journal must "
            "cover the engine's entire history)"
        )
    journal = journal if journal is not None else Journal()

    # -- wrap the mutators --------------------------------------------------------

    original_register = core.register_schema
    register_depth = {"value": 0}

    def register_schema(schema):
        # register_schema recurses into subschemas (each recursive call
        # lands back here because the engine dispatches through the
        # instance attribute); journal only the outermost registration —
        # its interchange payload already contains the whole subtree.
        known = schema.schema_id in {s.schema_id for s in core.schemas()}
        register_depth["value"] += 1
        try:
            result = original_register(schema)
        finally:
            register_depth["value"] -= 1
        if not known and register_depth["value"] == 0:
            journal.append(
                {
                    "op": "register_schema",
                    "payload": schema_to_dict(schema, conditions),
                }
            )
        return result

    core.register_schema = register_schema  # type: ignore[method-assign]

    original_register_participant = core.roles.register_participant

    def register_participant(participant):
        result = original_register_participant(participant)
        journal.append(
            {
                "op": "register_participant",
                "id": participant.participant_id,
                "name": participant.name,
                "kind": participant.kind.name,
            }
        )
        return result

    core.roles.register_participant = register_participant  # type: ignore[method-assign]

    original_define_role = core.roles.define_role

    def define_role(name):
        role = original_define_role(name)
        journal.append({"op": "define_role", "name": name})

        original_add_member = role.add_member

        def add_member(participant):
            original_add_member(participant)
            journal.append(
                {
                    "op": "add_role_member",
                    "role": name,
                    "participant": participant.participant_id,
                }
            )

        role.add_member = add_member  # type: ignore[method-assign]
        return role

    core.roles.define_role = define_role  # type: ignore[method-assign]

    original_create_process = core.create_process_instance

    def create_process_instance(schema, parent=None, activity_variable=None):
        instance = original_create_process(schema, parent, activity_variable)
        journal.append(
            {
                "op": "create_process_instance",
                "schema_id": schema.schema_id,
                "parent": parent.instance_id if parent else None,
                "variable": activity_variable.name if activity_variable else None,
                "instance_id": instance.instance_id,
            }
        )
        return instance

    core.create_process_instance = create_process_instance  # type: ignore[method-assign]

    original_create_activity = core.create_activity_instance

    def create_activity_instance(parent, activity_variable_name):
        instance = original_create_activity(parent, activity_variable_name)
        # Subprocess creation already journaled via create_process_instance.
        if instance.instance_id.startswith("act-"):
            journal.append(
                {
                    "op": "create_activity_instance",
                    "parent": parent.instance_id,
                    "variable": activity_variable_name,
                    "instance_id": instance.instance_id,
                }
            )
        return instance

    core.create_activity_instance = create_activity_instance  # type: ignore[method-assign]

    original_change_state = core.change_state

    def change_state(instance, new_state, user=None):
        change = original_change_state(instance, new_state, user)
        journal.append(
            {
                "op": "change_state",
                "instance_id": instance.instance_id,
                "new_state": new_state,
                "time": change.time,
                "user": user,
            }
        )
        return change

    core.change_state = change_state  # type: ignore[method-assign]

    original_share = core.share_context

    def share_context(ref, subprocess):
        result = original_share(ref, subprocess)
        journal.append(
            {
                "op": "share_context",
                "context_id": ref.context_id,
                "holder": ref.holder_process_instance_id,
                "subprocess": subprocess.instance_id,
            }
        )
        return result

    core.share_context = share_context  # type: ignore[method-assign]

    original_destroy = core.destroy_context

    def destroy_context(ref):
        journal.append({"op": "destroy_context", "context_id": ref.context_id})
        return original_destroy(ref)

    core.destroy_context = destroy_context  # type: ignore[method-assign]

    original_scoped_role = core.create_scoped_role

    def create_scoped_role(ref, field_name, members=()):
        role = original_scoped_role(ref, field_name, members)
        journal.append(
            {
                "op": "create_scoped_role",
                "context_id": ref.context_id,
                "field": field_name,
                "members": [p.participant_id for p in members],
            }
        )
        _journal_scoped_membership(role, ref.context_id, field_name)
        return role

    core.create_scoped_role = create_scoped_role  # type: ignore[method-assign]

    def _journal_scoped_membership(role, context_id, field_name):
        # Membership changes after creation are recorded so the audit
        # trail is complete, but they are not replayable state (see the
        # module docstring): recover_core refuses a journal containing
        # them rather than silently recovering without the change.
        original_add = role.add_member
        original_remove = role.remove_member

        def add_member(participant):
            original_add(participant)
            journal.append(
                {
                    "op": "scoped_role_membership",
                    "action": "add",
                    "context_id": context_id,
                    "field": field_name,
                    "participant": participant.participant_id,
                }
            )

        def remove_member(participant):
            original_remove(participant)
            journal.append(
                {
                    "op": "scoped_role_membership",
                    "action": "remove",
                    "context_id": context_id,
                    "field": field_name,
                    "participant": participant.participant_id,
                }
            )

        role.add_member = add_member
        role.remove_member = remove_member

    # Context field assignments: observe the change stream, skipping the
    # role-valued writes that create_scoped_role journals itself.
    def on_context_change(change: ContextChange) -> None:
        from ..core.roles import ScopedRole

        if isinstance(change.new_value, ScopedRole):
            return
        journal.append(
            {
                "op": "set_field",
                "context_id": change.context_id,
                "field": change.field_name,
                "value": change.new_value,
                "time": change.time,
            }
        )

    core.on_context_change(on_context_change)
    return journal


def recover_core(
    journal: Journal,
    conditions: Optional[ConditionRegistry] = None,
) -> CoreEngine:
    """Replay *journal* into a fresh CORE engine.

    The recovered engine has the same schemas, participants, roles,
    instance trees (ids included), state machines, context contents,
    associations, and scoped roles as the journaled one at the moment the
    journal ends.  Coordination worklists and awareness operator state are
    *not* part of the CORE surface; they re-derive at run time.
    """
    core = CoreEngine()
    contexts_by_id: Dict[str, Any] = {}

    def ref_for(context_id: str):
        try:
            return contexts_by_id[context_id]
        except KeyError:
            raise RecoveryError(
                f"journal references unknown context {context_id!r}"
            ) from None

    def capture_contexts(instance) -> None:
        for ref in instance.context_refs.values():
            contexts_by_id[ref.context_id] = ref

    for index, record in enumerate(journal.records()):
        op = record.get("op")
        try:
            if op == "register_schema":

                def resolver(schema_id):
                    try:
                        return core.schema(schema_id)
                    except ReproError:
                        return None

                core.register_schema(
                    schema_from_dict(
                        record["payload"], conditions, resolver=resolver
                    )
                )
            elif op == "register_participant":
                core.roles.register_participant(
                    Participant(
                        record["id"],
                        record["name"],
                        ParticipantKind[record["kind"]],
                    )
                )
            elif op == "define_role":
                core.roles.define_role(record["name"])
            elif op == "add_role_member":
                core.roles.role(record["role"]).add_member(
                    core.roles.participant(record["participant"])
                )
            elif op == "create_process_instance":
                schema = core.schema(record["schema_id"])
                parent = (
                    core.instance(record["parent"])
                    if record["parent"]
                    else None
                )
                variable = (
                    parent.schema.activity_variable(record["variable"])
                    if parent is not None
                    else None
                )
                instance = core.create_process_instance(
                    schema, parent=parent, activity_variable=variable
                )
                if instance.instance_id != record["instance_id"]:
                    raise RecoveryError(
                        f"id drift: expected {record['instance_id']!r}, "
                        f"got {instance.instance_id!r}"
                    )
                capture_contexts(instance)
            elif op == "create_activity_instance":
                parent = core.instance(record["parent"])
                instance = core.create_activity_instance(
                    parent, record["variable"]
                )
                if instance.instance_id != record["instance_id"]:
                    raise RecoveryError(
                        f"id drift: expected {record['instance_id']!r}, "
                        f"got {instance.instance_id!r}"
                    )
            elif op == "change_state":
                core.clock.advance_to(max(core.clock.now(), record["time"] - 1))
                core.change_state(
                    core.instance(record["instance_id"]),
                    record["new_state"],
                    user=record["user"],
                )
            elif op == "set_field":
                core.clock.advance_to(max(core.clock.now(), record["time"]))
                ref_for(record["context_id"]).set(
                    record["field"], record["value"]
                )
            elif op == "share_context":
                core.share_context(
                    ref_for(record["context_id"]),
                    core.instance(record["subprocess"]),
                )
            elif op == "destroy_context":
                core.destroy_context(ref_for(record["context_id"]))
            elif op == "create_scoped_role":
                members = tuple(
                    core.roles.participant(pid) for pid in record["members"]
                )
                core.create_scoped_role(
                    ref_for(record["context_id"]), record["field"], members
                )
            elif op == "scoped_role_membership":
                # Audit-only record (see the module docstring): replaying
                # it cannot reproduce the engine's state, so fail loudly
                # instead of recovering something that silently diverges.
                raise RecoveryError(
                    "journal contains a post-creation scoped-role "
                    f"membership change ({record.get('action')!r} "
                    f"{record.get('participant')!r} on "
                    f"{record.get('context_id')}.{record.get('field')}); "
                    "such changes are outside the recoverable surface — "
                    "set the membership via CoreEngine.create_scoped_role "
                    "so it survives recovery"
                )
            else:
                raise RecoveryError(f"unknown journal op {op!r}")
        except ReproError as error:
            raise RecoveryError(
                f"replay failed at record {index} ({op}): {error}"
            ) from error
    return core
