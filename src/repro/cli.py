"""Command-line interface: run the paper's scenarios from a shell.

``python -m repro <command>`` exposes the library's headline flows:

* ``demo`` — the Section 5.4 deadline-violation walkthrough;
* ``epidemic`` — the Figure 1 crisis information-gathering scenario;
* ``overload`` — the QE1 comparison tables (CMI vs baselines);
* ``demonstration`` — the Section 7-scale run with paper-vs-measured rows;
* ``trace`` — the demonstration run under pipeline instrumentation:
  recognition provenance chains for delivered notifications plus the
  per-stage latency summary;
* ``check-spec`` — parse and validate an awareness specification written
  in the DSL, printing the resulting window (a designer's lint step).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import EnactmentSystem, Participant
from .errors import ReproError


def _cmd_demo(args: argparse.Namespace) -> int:
    from .workloads.taskforce import TaskForceApplication

    system = EnactmentSystem()
    lee = system.register_participant(Participant("u-lee", "dr-lee"))
    kim = system.register_participant(Participant("u-kim", "dr-kim"))
    role = system.core.roles.define_role("epidemiologist")
    role.add_member(lee)
    role.add_member(kim)
    app = TaskForceApplication(system)
    app.install_awareness()
    print(app.window.render())
    task_force = app.create_task_force(lee, [lee, kim], deadline=200)
    request = app.request_information(task_force, kim, deadline=150)
    print("\ntask force deadline 200; dr-kim's request deadline 150")
    app.change_task_force_deadline(task_force, 120)
    print("dr-lee moves the task force deadline to 120 -> violation\n")
    for notification in system.participant_client(kim).check_awareness():
        print(f"[dr-kim's viewer] {notification.description}")
    app.complete_request(request)
    return 0


def _cmd_epidemic(args: argparse.Namespace) -> int:
    from .workloads.epidemic import EpidemicScenario

    report = EpidemicScenario(EnactmentSystem(), seed=args.seed).run()
    print(report.timeline)
    print(
        f"\nlab tests: {report.lab_tests_run} (positive at "
        f"{report.positive_test}); vector task force: "
        f"{report.vector_tf_started}; expertise rounds: "
        f"{report.expertise_rounds}"
    )
    print(f"awareness: {report.notifications_by_participant}")
    return 0


def _cmd_overload(args: argparse.Namespace) -> int:
    from .workloads.generator import CrisisWorkload, WorkloadConfig

    config = WorkloadConfig(task_forces=args.task_forces, seed=args.seed)
    result = CrisisWorkload(config).run()
    print(result.table("raw"))
    print()
    print(result.table("digested"))
    return 0


def _cmd_demonstration(args: argparse.Namespace) -> int:
    from .metrics.report import render_table
    from .workloads.demonstration import build_demonstration

    report = build_demonstration(seed=args.seed).run()
    rows = [
        ("collaboration processes", "9", report.process_schemas),
        ("CMM activities", "> 50", report.cmm_activities),
        ("WfMS activities", "a few hundred", report.wfms_activities),
        ("awareness specifications", "8", report.awareness_specifications),
        ("context scripts", "30", report.context_scripts),
        (
            "all functionality provided",
            "yes",
            "yes" if report.all_functionality_provided else "NO",
        ),
    ]
    print(render_table(("statistic", "paper", "measured"), rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .metrics.report import render_table
    from .observability import instrumented
    from .workloads.demonstration import build_demonstration

    with instrumented() as obs:
        build_demonstration(seed=args.seed).run()

    deliveries = obs.provenance.recent_deliveries()
    shown = deliveries[-args.limit :] if args.limit else deliveries
    if args.json:
        print(
            json.dumps(
                {
                    "deliveries": [record.to_dict() for record in shown],
                    "stages": {
                        stage: {"spans": count, "mean_us": round(mean, 3)}
                        for stage, (count, mean) in obs.tracer.stage_summary().items()
                    },
                    "traces": obs.tracer.export_json(),
                },
                indent=2,
                default=str,
            )
        )
        return 0
    if not deliveries:
        print("no notifications were delivered; nothing to trace")
        return 1
    print(
        f"{len(deliveries)} notification(s) delivered; "
        f"showing the last {len(shown)} with recognition provenance:\n"
    )
    for record in shown:
        print(record.render())
        print()
    rows = [
        (stage, count, f"{mean:.1f}")
        for stage, (count, mean) in sorted(obs.tracer.stage_summary().items())
    ]
    print(render_table(("stage", "spans", "mean us"), rows, title="pipeline stages"))
    return 0


def _cmd_check_spec(args: argparse.Namespace) -> int:
    from .awareness.dsl import compile_specification
    from .awareness.specification import SpecificationWindow
    from .events.producers import ActivityEventProducer, ContextEventProducer

    with open(args.file) as handle:
        text = handle.read()
    window = SpecificationWindow(
        args.process_schema,
        {
            "ActivityEvent": ActivityEventProducer(),
            "ContextEvent": ContextEventProducer(),
        },
    )
    schemas = compile_specification(window, text)
    window.validate()
    print(f"OK: {len(schemas)} awareness schema(s)")
    print(window.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CMI reproduction: run the paper's scenarios",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="the Section 5.4 walkthrough")
    demo.set_defaults(handler=_cmd_demo)

    epidemic = commands.add_parser(
        "epidemic", help="the Figure 1 crisis scenario"
    )
    epidemic.add_argument("--seed", type=int, default=7)
    epidemic.set_defaults(handler=_cmd_epidemic)

    overload = commands.add_parser(
        "overload", help="the QE1 overload comparison"
    )
    overload.add_argument("--task-forces", type=int, default=6)
    overload.add_argument("--seed", type=int, default=11)
    overload.set_defaults(handler=_cmd_overload)

    demonstration = commands.add_parser(
        "demonstration", help="the Section 7-scale run"
    )
    demonstration.add_argument("--seed", type=int, default=3)
    demonstration.set_defaults(handler=_cmd_demonstration)

    trace = commands.add_parser(
        "trace",
        help="demonstration run with provenance chains + stage latencies",
    )
    trace.add_argument("--seed", type=int, default=3)
    trace.add_argument(
        "--limit",
        type=int,
        default=5,
        help="how many recent deliveries to show (0 = all recorded)",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit deliveries, stage summary, and raw traces as JSON",
    )
    trace.set_defaults(handler=_cmd_trace)

    check = commands.add_parser(
        "check-spec", help="validate a DSL awareness specification"
    )
    check.add_argument("file", help="path to the specification text")
    check.add_argument(
        "--process-schema",
        default="P",
        help="process schema id the window is associated with",
    )
    check.set_defaults(handler=_cmd_check_spec)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
