"""Command-line interface: run the paper's scenarios from a shell.

``python -m repro <command>`` exposes the library's headline flows:

* ``demo`` — the Section 5.4 deadline-violation walkthrough;
* ``epidemic`` — the Figure 1 crisis information-gathering scenario;
* ``overload`` — the QE1 comparison tables (CMI vs baselines);
* ``demonstration`` — the Section 7-scale run with paper-vs-measured rows;
* ``trace`` — the demonstration run under pipeline instrumentation:
  recognition provenance chains for delivered notifications plus the
  per-stage latency summary; ``--shards N`` instead runs the seeded
  shard workload and shows the *assembled cross-shard traces* (one
  logical trace per ship wave, holding every shard's spans) plus the
  per-shard stage p95 table;
* ``health`` — the demonstration run with self-awareness attached: the
  per-system SLO rule states and the federation rollup (exit code 0 =
  ok, 1 = degraded, 2 = failing); ``--shards N`` evaluates the SLO
  rules against the *merged worker registries* of a sharded federation
  instead — a breach inside any one worker sets the exit code;
* ``export`` — a Prometheus text-exposition snapshot: the demonstration
  run's registry, or (``--shards N``) the merged federation registry
  with one ``shard``-labelled series per worker;
* ``top`` — a live federation dashboard driven by CMI's own awareness
  pipeline: queues, delivery lag, firing alerts, hottest detectors;
* ``plans`` — deploy a fleet of per-participant copies of one awareness
  specification and show how the plan cache shares their operator nodes;
* ``journal`` — inspect (and optionally compact) the write-ahead
  journals and snapshots a durable sharded run left behind;
* ``check-spec`` — parse and validate an awareness specification written
  in the DSL, printing the resulting window (a designer's lint step).

``shards`` and ``top`` accept ``--durable DIR`` to run their sharded
federation with per-shard write-ahead journaling and crash recovery
(process backend).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import EnactmentSystem, Participant
from .errors import ReproError


def _cmd_demo(args: argparse.Namespace) -> int:
    from .workloads.taskforce import TaskForceApplication

    system = EnactmentSystem()
    lee = system.register_participant(Participant("u-lee", "dr-lee"))
    kim = system.register_participant(Participant("u-kim", "dr-kim"))
    role = system.core.roles.define_role("epidemiologist")
    role.add_member(lee)
    role.add_member(kim)
    app = TaskForceApplication(system)
    app.install_awareness()
    print(app.window.render())
    task_force = app.create_task_force(lee, [lee, kim], deadline=200)
    request = app.request_information(task_force, kim, deadline=150)
    print("\ntask force deadline 200; dr-kim's request deadline 150")
    app.change_task_force_deadline(task_force, 120)
    print("dr-lee moves the task force deadline to 120 -> violation\n")
    for notification in system.participant_client(kim).check_awareness():
        print(f"[dr-kim's viewer] {notification.description}")
    app.complete_request(request)
    return 0


def _cmd_epidemic(args: argparse.Namespace) -> int:
    from .workloads.epidemic import EpidemicScenario

    report = EpidemicScenario(EnactmentSystem(), seed=args.seed).run()
    print(report.timeline)
    print(
        f"\nlab tests: {report.lab_tests_run} (positive at "
        f"{report.positive_test}); vector task force: "
        f"{report.vector_tf_started}; expertise rounds: "
        f"{report.expertise_rounds}"
    )
    print(f"awareness: {report.notifications_by_participant}")
    return 0


def _cmd_overload(args: argparse.Namespace) -> int:
    from .workloads.generator import CrisisWorkload, WorkloadConfig

    config = WorkloadConfig(task_forces=args.task_forces, seed=args.seed)
    result = CrisisWorkload(config).run()
    print(result.table("raw"))
    print()
    print(result.table("digested"))
    return 0


def _cmd_demonstration(args: argparse.Namespace) -> int:
    from .metrics.report import render_table
    from .workloads.demonstration import build_demonstration

    report = build_demonstration(seed=args.seed).run()
    rows = [
        ("collaboration processes", "9", report.process_schemas),
        ("CMM activities", "> 50", report.cmm_activities),
        ("WfMS activities", "a few hundred", report.wfms_activities),
        ("awareness specifications", "8", report.awareness_specifications),
        ("context scripts", "30", report.context_scripts),
        (
            "all functionality provided",
            "yes",
            "yes" if report.all_functionality_provided else "NO",
        ),
    ]
    print(render_table(("statistic", "paper", "measured"), rows))
    return 0


def _shard_workload(args: argparse.Namespace):
    """The seeded shard workload the observability commands drive."""
    from .workloads.generator import ShardStreamConfig, ShardStreamWorkload

    return ShardStreamWorkload(
        ShardStreamConfig(
            forces=max(4, args.shards * 2),
            windows_per_force=2,
            events_per_force=40,
            seed=args.seed,
        )
    )


def _cmd_trace_shards(args: argparse.Namespace) -> int:
    import json

    from .metrics.report import render_table
    from .observability.registry import Histogram
    from .parallel import ShardConfig, ShardedFederation

    workload = _shard_workload(args)
    config = ShardConfig(
        shards=args.shards,
        backend=args.backend,
        batch_size=32,
        instrument=True,
        trace_sample_every=1,
    )
    with ShardedFederation(workload.blueprint(), config) as federation:
        federation.ingest(workload.events())
        federation.drain()
        federation.refresh_observability()
        assembler = federation.trace_assembler
        traces = federation.traces()
        merged = federation.metrics_registry()

    shown = list(traces[-args.limit :] if args.limit else traces)
    histogram = merged.get("pipeline_stage_us")
    p95 = (
        {
            labels: histogram.quantile(0.95, labels)
            for labels in sorted(histogram.series_labels())
        }
        if isinstance(histogram, Histogram)
        else {}
    )
    if args.json:
        print(
            json.dumps(
                {
                    "traces": [
                        dict(
                            trace,
                            shards=list(assembler.shards_of(trace)),
                        )
                        for trace in shown
                    ],
                    "orphaned": assembler.orphaned,
                    "evicted": assembler.evicted,
                    "stage_p95_us": {
                        f"shard={shard}/{stage}": round(value, 3)
                        for (shard, stage), value in p95.items()
                    },
                },
                indent=2,
                default=str,
            )
        )
        return 0
    if not traces:
        print("no traces were assembled; nothing to show")
        return 1
    print(
        f"{len(traces)} cross-shard trace(s) assembled; "
        f"showing the last {len(shown)}:\n"
    )
    for trace in shown:
        print(assembler.render(trace))
        print()
    if p95:
        rows = [
            (shard, stage, f"{value:.1f}")
            for (shard, stage), value in p95.items()
        ]
        print(
            render_table(
                ("shard", "stage", "p95 us"),
                rows,
                title="stage p95 per shard",
            )
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .metrics.report import render_table
    from .observability import instrumented
    from .workloads.demonstration import build_demonstration

    if args.shards > 0:
        return _cmd_trace_shards(args)
    with instrumented() as obs:
        build_demonstration(seed=args.seed).run()

    deliveries = obs.provenance.recent_deliveries()
    shown = deliveries[-args.limit :] if args.limit else deliveries
    if args.json:
        print(
            json.dumps(
                {
                    "deliveries": [record.to_dict() for record in shown],
                    "stages": {
                        stage: {"spans": count, "mean_us": round(mean, 3)}
                        for stage, (count, mean) in obs.tracer.stage_summary().items()
                    },
                    "traces": obs.tracer.export_json(),
                },
                indent=2,
                default=str,
            )
        )
        return 0
    if not deliveries:
        print("no notifications were delivered; nothing to trace")
        return 1
    print(
        f"{len(deliveries)} notification(s) delivered; "
        f"showing the last {len(shown)} with recognition provenance:\n"
    )
    for record in shown:
        print(record.render())
        print()
    rows = [
        (stage, count, f"{mean:.1f}")
        for stage, (count, mean) in sorted(obs.tracer.stage_summary().items())
    ]
    print(render_table(("stage", "spans", "mean us"), rows, title="pipeline stages"))
    return 0


def _parse_limit_overrides(pairs: List[str]) -> dict:
    overrides = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ReproError(
                f"--limit takes rule=value pairs, got {pair!r}"
            )
        try:
            overrides[name] = int(value)
        except ValueError:
            raise ReproError(
                f"--limit value for {name!r} must be an integer, "
                f"got {value!r}"
            ) from None
    return overrides


def _cmd_health_shards(args: argparse.Namespace, rules: list) -> int:
    import json

    from .parallel import ShardConfig, ShardedFederation

    workload = _shard_workload(args)
    config = ShardConfig(
        shards=args.shards,
        backend=args.backend,
        batch_size=32,
        instrument=True,
        ship_logs=True,
        trace_sample_every=1,
    )
    with ShardedFederation(workload.blueprint(), config) as federation:
        federation.ingest(workload.events())
        if args.no_drain:
            # Leave the participant queues full: worker-side backpressure
            # gauges (queue depth, delivery lag) stay observable so their
            # SLO rules can actually fire.
            federation.flush_buffers()
        else:
            federation.drain()
        health = federation.health(tuple(rules))
        stats = federation.stats()
        dropped = federation.logs().dropped()

    if args.json:
        payload = health.as_dict()
        payload["federation"] = {
            "shards": args.shards,
            "backend": args.backend,
            "stats": stats,
            "logs_dropped": {
                str(shard): count for shard, count in dropped.items()
            },
        }
        print(json.dumps(payload, indent=2, default=str))
    else:
        firing = health.firing()
        print(
            f"federation: {health.status} — {len(firing)} rule(s) firing, "
            f"{stats['shards_alive']}/{args.shards} shard(s) alive "
            f"({args.backend} backend)"
        )
        for state in health.rules:
            print(
                f"  {state.rule.name:<20} "
                f"{'FIRING' if state.firing else 'ok':<6} "
                f"last={state.last_value}"
            )
    return health.exit_code


def _cmd_health(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from .observability import instrumented
    from .observability.health import default_rules
    from .observability.selfawareness import (
        FederationHealthView,
        SelfAwareness,
    )
    from .workloads.demonstration import build_demonstration

    overrides = _parse_limit_overrides(args.limit)
    rules = []
    for rule in default_rules():
        if rule.name in overrides:
            rule = dataclasses.replace(rule, limit=overrides.pop(rule.name))
        rules.append(rule)
    if overrides:
        known = ", ".join(r.name for r in default_rules())
        raise ReproError(
            f"unknown rule(s) in --limit: {sorted(overrides)}; "
            f"default rules: {known}"
        )

    if args.shards > 0:
        return _cmd_health_shards(args, rules)
    with instrumented():
        builder = build_demonstration(seed=args.seed)
        awareness = SelfAwareness(
            builder.system, rules=tuple(rules), interval=args.interval
        )
        builder.run()
        awareness.sample_now()
        view = FederationHealthView([awareness])
        rollup = view.rollup()
        alerts = awareness.alerts()
        if args.json:
            payload = view.as_dict()
            payload["alerts"] = [
                {
                    "participant": alert.participant_id,
                    "time": alert.time,
                    "schema": alert.schema_name,
                    "description": alert.description,
                    "provenance": alert.parameters.get("provenance"),
                }
                for alert in alerts
            ]
            print(json.dumps(payload, indent=2, default=str))
        else:
            print(view.render())
            if alerts:
                print(f"\n{len(alerts)} alert notification(s):")
                for alert in alerts:
                    print(f"  t={alert.time} [{alert.schema_name}] "
                          f"{alert.description}")
    return rollup.exit_code


def _cmd_export(args: argparse.Namespace) -> int:
    if args.shards > 0:
        from .parallel import ShardConfig, ShardedFederation

        workload = _shard_workload(args)
        config = ShardConfig(
            shards=args.shards,
            backend=args.backend,
            batch_size=32,
            instrument=True,
            ship_logs=True,
            trace_sample_every=1,
        )
        with ShardedFederation(workload.blueprint(), config) as federation:
            federation.ingest(workload.events())
            federation.drain()
            federation.refresh_observability()
            text = federation.render_metrics()
        print(text)
        return 0

    from .workloads.demonstration import build_demonstration

    builder = build_demonstration(seed=args.seed)
    builder.run()
    print(builder.system.metrics.render_text())
    return 0


def _cmd_shards(args: argparse.Namespace) -> int:
    import json

    from .metrics.report import render_table
    from .parallel import ShardConfig, ShardedFederation
    from .workloads.generator import ShardStreamConfig, ShardStreamWorkload

    workload = ShardStreamWorkload(
        ShardStreamConfig(
            forces=args.forces,
            windows_per_force=args.windows,
            events_per_force=args.events,
            seed=args.seed,
        )
    )
    config = ShardConfig(
        shards=args.shards,
        backend=args.backend,
        durable_dir=args.durable,
        snapshot_every=args.snapshot_every,
    )
    with ShardedFederation(workload.blueprint(), config) as federation:
        federation.ingest(workload.events())
        notifications = federation.drain()
        rows = federation.shard_stats()
        totals = federation.stats()

    if args.json:
        print(
            json.dumps(
                {
                    "config": {
                        "shards": args.shards,
                        "backend": args.backend,
                        "forces": args.forces,
                        "windows_per_force": args.windows,
                        "events_per_force": args.events,
                        "seed": args.seed,
                        "durable": args.durable,
                    },
                    "shards": rows,
                    "totals": totals,
                    "notifications_merged": len(notifications),
                },
                indent=2,
            )
        )
        return 0

    print(
        f"{args.shards} shard(s), {args.backend} backend — "
        f"{totals['events_ingested']} events over {args.forces} task "
        f"forces, {len(notifications)} notifications merged\n"
    )
    headers = ["shard", "alive", "events", "queue", "recognized", "notifs"]
    table = [
        [
            row["shard"],
            "yes" if row["alive"] else "NO",
            row.get("events_ingested", 0),
            row.get("queue_depth", 0),
            row.get("composites_recognized", 0),
            row.get("notifications", 0),
        ]
        for row in rows
    ]
    if args.backend == "process":
        # Credit-window columns: frames in flight, credits left in the
        # window, and how often ingest stalled on this shard.
        headers.extend(["inflight", "credits", "stalls"])
        for line, row in zip(table, rows):
            line.extend(
                [
                    row.get("inflight", 0),
                    row.get("credits", 0),
                    row.get("stalls", 0),
                ]
            )
    if args.durable:
        headers.extend(["journal", "recovered"])
        for line, row in zip(table, rows):
            line.extend(
                [row.get("journal_frames", 0), row.get("recoveries", 0)]
            )
    print(
        render_table(
            tuple(headers),
            [tuple(line) for line in table],
            title="per-shard gauges",
        )
    )
    if not all(row["alive"] for row in rows):
        return 1
    return 0


def _cmd_journal(args: argparse.Namespace) -> int:
    import json
    import os

    from .durability.log import (
        CONTROL_COMPACTED,
        FrameLog,
        detect_codec,
        log_base,
        read_file_frames,
        scan,
    )
    from .durability.snapshot import ShardSnapshot
    from .durability.supervisor import JOURNAL_FILENAME, SNAPSHOT_FILENAME
    from .metrics.report import render_table
    from .parallel.codec import frame_to_jsonable

    targets: List[tuple] = []
    if os.path.isfile(args.dir):
        targets.append((os.path.basename(args.dir), args.dir, None))
    elif os.path.isdir(args.dir):
        for name in sorted(os.listdir(args.dir)):
            journal_path = os.path.join(args.dir, name, JOURNAL_FILENAME)
            if os.path.isfile(journal_path):
                targets.append(
                    (
                        name,
                        journal_path,
                        os.path.join(args.dir, name, SNAPSHOT_FILENAME),
                    )
                )
        if not targets and os.path.isfile(
            os.path.join(args.dir, JOURNAL_FILENAME)
        ):
            targets.append(
                (
                    os.path.basename(args.dir.rstrip(os.sep)),
                    os.path.join(args.dir, JOURNAL_FILENAME),
                    os.path.join(args.dir, SNAPSHOT_FILENAME),
                )
            )
    if not targets:
        print(f"error: no frame logs under {args.dir!r}", file=sys.stderr)
        return 1

    reports = []
    for name, journal_path, snapshot_path in targets:
        # The reader auto-detects the codec from the file's first bytes
        # (binary journals open with a magic header); an explicit
        # --format is an assertion about what the file should be.
        codec = detect_codec(journal_path) or "json"
        if args.format != "auto" and codec != args.format:
            print(
                f"error: {journal_path} is a {codec} journal, "
                f"not {args.format}",
                file=sys.stderr,
            )
            return 1
        file_frames, valid_bytes, torn = scan(journal_path)
        base = log_base(journal_path)
        payload_frames = file_frames - (1 if base else 0)
        kinds: dict = {}
        frame_dump: List[dict] = []
        for frame in read_file_frames(journal_path):
            kind = frame.get("kind")
            if kind == CONTROL_COMPACTED:
                continue
            kinds[str(kind)] = kinds.get(str(kind), 0) + 1
            if args.dump:
                # frame_to_jsonable renders a binary journal's raw
                # events as their wire dicts, so both codecs
                # pretty-print identically.
                frame_dump.append(frame_to_jsonable(frame))
        snapshot = None
        if snapshot_path is not None and os.path.exists(snapshot_path):
            snapshot = ShardSnapshot.load(snapshot_path)
        report = {
            "name": name,
            "path": journal_path,
            "codec": codec,
            "frames": payload_frames,
            "base": base,
            "next_index": base + payload_frames,
            "bytes": os.path.getsize(journal_path),
            "torn_tail": torn,
            "kinds": kinds,
            "snapshot_frame": (
                snapshot.frame_index if snapshot is not None else None
            ),
        }
        if args.dump:
            report["frame_list"] = frame_dump
        if args.compact:
            keep_from = (
                snapshot.frame_index if snapshot is not None else None
            )
            if keep_from is not None and keep_from > base:
                # Keep the file's own codec: offline compaction must
                # never silently re-encode someone's journal.
                with FrameLog(journal_path, codec=codec) as log:
                    survivors = log.compact(keep_from)
                report["compacted_to"] = keep_from
                report["frames"] = survivors
                report["base"] = keep_from
                report["bytes"] = os.path.getsize(journal_path)
        reports.append(report)

    if args.json:
        print(json.dumps({"journals": reports}, indent=2))
        return 0
    print(
        render_table(
            ("journal", "codec", "frames", "base", "bytes", "torn",
             "snapshot@"),
            [
                (
                    report["name"],
                    report["codec"],
                    report["frames"],
                    report["base"],
                    report["bytes"],
                    "YES" if report["torn_tail"] else "no",
                    report["snapshot_frame"]
                    if report["snapshot_frame"] is not None
                    else "-",
                )
                for report in reports
            ],
            title="write-ahead journals",
        )
    )
    for report in reports:
        kinds = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(report["kinds"].items())
        )
        print(f"  {report['name']}: {kinds or 'empty'}")
        for frame in report.get("frame_list", ()):
            print(f"    {json.dumps(frame, sort_keys=True)}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from .observability.selfawareness import (
        FederationHealthView,
        SelfAwareness,
    )
    from .workloads.taskforce import TaskForceApplication

    view = FederationHealthView()
    drivers = []
    for index in range(1, args.systems + 1):
        system = EnactmentSystem(name=f"cmi-{index}")
        lead = system.register_participant(
            Participant(f"lead-{index}", f"lead-{index}")
        )
        aide = system.register_participant(
            Participant(f"aide-{index}", f"aide-{index}")
        )
        role = system.core.roles.define_role("epidemiologist")
        role.add_member(lead)
        role.add_member(aide)
        app = TaskForceApplication(system)
        app.install_awareness()
        awareness = SelfAwareness(system, interval=args.interval)
        view.add(awareness)
        drivers.append((system, app, lead, aide, awareness))

    # When sharding is active the dashboard also drives a sharded
    # federation (serial backend — the gauges, not the speedup, are the
    # point here) and shows its per-shard column block.
    shard_federation = None
    shard_events: list = []
    shard_cursor = 0
    if args.shards > 1:
        from .parallel import ShardConfig, ShardedFederation
        from .workloads.generator import ShardStreamConfig, ShardStreamWorkload

        shard_workload = ShardStreamWorkload(
            ShardStreamConfig(forces=max(4, args.shards * 2))
        )
        # --durable flips the block to the process backend (the serial
        # loop has no worker to journal for or respawn).
        shard_federation = ShardedFederation(
            shard_workload.blueprint(),
            ShardConfig(
                shards=args.shards,
                backend="process" if args.durable else "serial",
                durable_dir=args.durable,
            ),
        )
        shard_events = shard_workload.events()

    def drive() -> None:
        """One round of load: a task force whose deadline move violates
        an open request deadline, then completion."""
        nonlocal shard_cursor
        for system, app, lead, aide, __ in drivers:
            now = system.clock.now()
            task_force = app.create_task_force(
                lead, [lead, aide], deadline=now + 80
            )
            request = app.request_information(
                task_force, aide, deadline=now + 60
            )
            app.change_task_force_deadline(task_force, now + 40)
            app.complete_request(request)
            system.clock.advance(args.interval)
        if shard_federation is not None and shard_cursor < len(shard_events):
            step = max(1, len(shard_events) // 16)
            chunk = shard_events[shard_cursor:shard_cursor + step]
            shard_cursor += step
            shard_federation.ingest(chunk)
            shard_federation.drain()

    def render() -> str:
        lines = [view.render(), "", "hottest detectors:"]
        for system, __, ___, ____, _____ in drivers:
            detectors = sorted(
                system.awareness.detectors(),
                key=lambda d: d.recognized,
                reverse=True,
            )[:3]
            for detector in detectors:
                names = ", ".join(
                    schema.name for schema in detector.window.schemas()
                )
                lines.append(
                    f"  {system.name:<12} {detector.recognized:>5}  {names}"
                )
        if shard_federation is not None:
            lines.append("")
            lines.append(
                f"shards ({shard_cursor}/{len(shard_events)} events fed):"
            )
            # Only --durable runs the block on the process backend,
            # where the credit window exists.
            process_backend = bool(args.durable)
            credit_cols = (
                f" {'inflight':>8} {'credits':>7}" if process_backend else ""
            )
            durable_cols = (
                f" {'journal':>8} {'recovered':>9}" if args.durable else ""
            )
            lines.append(
                f"  {'shard':>5} {'alive':>5} {'events':>7} {'queue':>6} "
                f"{'recognized':>10} {'notifs':>7}{credit_cols}"
                f"{durable_cols}"
            )
            for row in shard_federation.shard_stats():
                credit_vals = (
                    f" {row.get('inflight', 0):>8} "
                    f"{row.get('credits', 0):>7}"
                    if process_backend
                    else ""
                )
                durable_vals = (
                    f" {row.get('journal_frames', 0):>8} "
                    f"{row.get('recoveries', 0):>9}"
                    if args.durable
                    else ""
                )
                lines.append(
                    f"  {row['shard']:>5} "
                    f"{'yes' if row['alive'] else 'NO':>5} "
                    f"{row.get('events_ingested', 0):>7} "
                    f"{row.get('queue_depth', 0):>6} "
                    f"{row.get('composites_recognized', 0):>10} "
                    f"{row.get('notifications', 0):>7}{credit_vals}"
                    f"{durable_vals}"
                )
            health = shard_federation.health()
            lines.append(
                f"  federation health: {health.status} "
                f"({len(health.firing())} rule(s) firing)"
            )
        return "\n".join(lines)

    iteration = 0
    try:
        while args.iterations == 0 or iteration < args.iterations:
            iteration += 1
            drive()
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            print(f"repro top — iteration {iteration}")
            print(render())
            if args.refresh > 0:
                time.sleep(args.refresh)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        if shard_federation is not None:
            shard_federation.close()
    return 0


#: The fleet template used by ``repro plans``: every window shares the
#: same three-operator recognition chain; only the delivery role (and the
#: schema name) is customized per participant.
_FLEET_SPEC_TEMPLATE = """
spike = Filter_context[CrisisContext, CaseCount](ContextEvent)
surge = Count[](spike)
breach = Compare1[>=, 3](surge)
deliver breach to analysts-{index} using identity \\
    as "case count surged" named AS_Surge_{index}
"""


def _cmd_plans(args: argparse.Namespace) -> int:
    import json

    from .awareness.dsl import compile_specification
    from .metrics.report import render_table

    system = EnactmentSystem()
    planner = system.awareness.planner
    assert planner is not None  # EnactmentSystem defaults to share_plans=True
    for index in range(args.windows):
        analyst = system.register_participant(
            Participant(f"u-{index}", f"analyst-{index}")
        )
        role = system.core.roles.define_role(f"analysts-{index}")
        role.add_member(analyst)
        window = system.awareness.create_window("P-Fleet")
        compile_specification(window, _FLEET_SPEC_TEMPLATE.format(index=index))
        system.awareness.deploy(window)
    stats = planner.stats()
    nodes = planner.describe()
    if args.json:
        print(json.dumps({"stats": stats, "nodes": nodes}, indent=2))
        return 0
    print(
        f"{stats['windows_deployed']} windows deployed; "
        f"{stats['operators_resolved']} operators resolved, "
        f"{stats['operators_deduped']} shared "
        f"({stats['nodes_live']} live plan nodes):\n"
    )
    rows = [
        (
            row["node_id"],
            row["instance"],
            row["operator"],
            row["refs"],
            row["consumers"],
        )
        for row in nodes
    ]
    print(
        render_table(
            ("node", "instance", "operator", "refs", "consumers"), rows
        )
    )
    return 0


def _cmd_check_spec(args: argparse.Namespace) -> int:
    from .awareness.dsl import compile_specification
    from .awareness.specification import SpecificationWindow
    from .events.producers import ActivityEventProducer, ContextEventProducer

    with open(args.file) as handle:
        text = handle.read()
    window = SpecificationWindow(
        args.process_schema,
        {
            "ActivityEvent": ActivityEventProducer(),
            "ContextEvent": ContextEventProducer(),
        },
    )
    schemas = compile_specification(window, text)
    window.validate()
    print(f"OK: {len(schemas)} awareness schema(s)")
    print(window.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CMI reproduction: run the paper's scenarios",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="the Section 5.4 walkthrough")
    demo.set_defaults(handler=_cmd_demo)

    epidemic = commands.add_parser(
        "epidemic", help="the Figure 1 crisis scenario"
    )
    epidemic.add_argument("--seed", type=int, default=7)
    epidemic.set_defaults(handler=_cmd_epidemic)

    overload = commands.add_parser(
        "overload", help="the QE1 overload comparison"
    )
    overload.add_argument("--task-forces", type=int, default=6)
    overload.add_argument("--seed", type=int, default=11)
    overload.set_defaults(handler=_cmd_overload)

    demonstration = commands.add_parser(
        "demonstration", help="the Section 7-scale run"
    )
    demonstration.add_argument("--seed", type=int, default=3)
    demonstration.set_defaults(handler=_cmd_demonstration)

    trace = commands.add_parser(
        "trace",
        help="demonstration run with provenance chains + stage latencies",
    )
    trace.add_argument("--seed", type=int, default=3)
    trace.add_argument(
        "--limit",
        type=int,
        default=5,
        help="how many recent deliveries to show (0 = all recorded)",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit deliveries, stage summary, and raw traces as JSON",
    )
    trace.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run the seeded shard workload instead and show assembled "
        "cross-shard traces + per-shard stage p95 (>0 activates)",
    )
    trace.add_argument(
        "--backend",
        choices=("serial", "process"),
        default="serial",
        help="shard backend for --shards (serial = in-process loop)",
    )
    trace.set_defaults(handler=_cmd_trace)

    health = commands.add_parser(
        "health",
        help="demonstration run with self-awareness: SLO states + rollup",
    )
    health.add_argument("--seed", type=int, default=3)
    health.add_argument(
        "--interval",
        type=int,
        default=5,
        help="telemetry sampling interval in clock ticks",
    )
    health.add_argument(
        "--limit",
        action="append",
        default=[],
        metavar="RULE=VALUE",
        help="override a default rule's limit (repeatable), e.g. "
        "--limit queue-depth=10",
    )
    health.add_argument(
        "--json",
        action="store_true",
        help="emit the per-system states, rollup, and alerts as JSON",
    )
    health.add_argument(
        "--shards",
        type=int,
        default=0,
        help="evaluate the SLO rules against the merged worker registries "
        "of a sharded federation instead (>0 activates)",
    )
    health.add_argument(
        "--backend",
        choices=("serial", "process"),
        default="serial",
        help="shard backend for --shards (serial = in-process loop)",
    )
    health.add_argument(
        "--no-drain",
        action="store_true",
        help="with --shards: leave the participant queues undrained so "
        "worker-side backpressure SLOs (queue depth, delivery lag) are "
        "observable",
    )
    health.set_defaults(handler=_cmd_health)

    top = commands.add_parser(
        "top", help="live federation dashboard over the awareness pipeline"
    )
    top.add_argument(
        "--systems", type=int, default=2, help="federation size"
    )
    top.add_argument(
        "--interval",
        type=int,
        default=5,
        help="telemetry sampling interval in clock ticks",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="dashboard redraws before exiting (0 = until interrupted)",
    )
    top.add_argument(
        "--refresh",
        type=float,
        default=1.0,
        help="seconds between redraws",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append dashboards instead of clearing the screen",
    )
    top.add_argument(
        "--shards",
        type=int,
        default=1,
        help="also drive a sharded federation and show per-shard gauges "
        "(>1 activates the shard column block)",
    )
    top.add_argument(
        "--durable",
        metavar="DIR",
        default=None,
        help="journal the shard block's mutations under DIR and recover "
        "crashed workers (switches the block to the process backend)",
    )
    top.set_defaults(handler=_cmd_top)

    export = commands.add_parser(
        "export",
        help="Prometheus text snapshot: demonstration registry, or the "
        "merged federation registry with --shards",
    )
    export.add_argument("--seed", type=int, default=3)
    export.add_argument(
        "--shards",
        type=int,
        default=0,
        help="export the merged registry of a sharded run instead: one "
        "shard-labelled series per worker plus the facade's own "
        "(>0 activates)",
    )
    export.add_argument(
        "--backend",
        choices=("serial", "process"),
        default="serial",
        help="shard backend for --shards (serial = in-process loop)",
    )
    export.set_defaults(handler=_cmd_export)

    shards = commands.add_parser(
        "shards",
        help="run the seeded shard workload and show per-shard gauges",
    )
    shards.add_argument(
        "--shards", type=int, default=2, help="how many shards to run"
    )
    shards.add_argument(
        "--backend",
        choices=("serial", "process"),
        default="serial",
        help="serial = in-process loop; process = forked workers",
    )
    shards.add_argument(
        "--forces", type=int, default=8, help="task forces in the workload"
    )
    shards.add_argument(
        "--windows",
        type=int,
        default=4,
        help="awareness windows (detector chains) per force",
    )
    shards.add_argument(
        "--events", type=int, default=200, help="context events per force"
    )
    shards.add_argument("--seed", type=int, default=23)
    shards.add_argument(
        "--durable",
        metavar="DIR",
        default=None,
        help="write per-shard journals and snapshots under DIR and "
        "recover crashed workers (requires --backend process)",
    )
    shards.add_argument(
        "--snapshot-every",
        type=int,
        default=256,
        help="journal frames between shard snapshots (0 = never; "
        "only meaningful with --durable)",
    )
    shards.add_argument(
        "--json",
        action="store_true",
        help="emit per-shard gauges, totals, and the config as JSON",
    )
    shards.set_defaults(handler=_cmd_shards)

    journal = commands.add_parser(
        "journal",
        help="inspect the write-ahead journals of a durable shard run",
    )
    journal.add_argument(
        "dir",
        help="durable root directory (shard-N subdirectories), one "
        "shard directory, or a single frame-log file",
    )
    journal.add_argument(
        "--compact",
        action="store_true",
        help="drop journal frames the shard's snapshot already covers",
    )
    journal.add_argument(
        "--format",
        choices=("auto", "json", "binary"),
        default="auto",
        help="expected journal codec: 'auto' (default) detects it from "
        "the file's magic bytes; an explicit codec fails when the file "
        "does not match",
    )
    journal.add_argument(
        "--dump",
        action="store_true",
        help="print every payload frame (binary journals render their "
        "raw events as wire dicts, identical to the JSON codec's output)",
    )
    journal.add_argument(
        "--json",
        action="store_true",
        help="emit the journal reports as JSON",
    )
    journal.set_defaults(handler=_cmd_journal)

    plans = commands.add_parser(
        "plans",
        help="deploy a fleet of customized windows and show plan sharing",
    )
    plans.add_argument(
        "--windows",
        type=int,
        default=16,
        help="how many per-participant copies of the template to deploy",
    )
    plans.add_argument(
        "--json",
        action="store_true",
        help="emit the sharing stats and live plan nodes as JSON",
    )
    plans.set_defaults(handler=_cmd_plans)

    check = commands.add_parser(
        "check-spec", help="validate a DSL awareness specification"
    )
    check.add_argument("file", help="path to the specification text")
    check.add_argument(
        "--process-schema",
        default="P",
        help="process schema id the window is associated with",
    )
    check.set_defaults(handler=_cmd_check_spec)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
