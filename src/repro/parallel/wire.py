"""Wire protocol of the sharded execution layer.

Workers and the :class:`~repro.parallel.federation.ShardedFederation`
facade exchange *frames*: a 4-byte big-endian length prefix followed by a
UTF-8 JSON document.  Framing keeps the channel self-synchronizing over a
plain OS pipe; JSON keeps it debuggable (``strace`` a worker and read the
traffic).

Events cross the wire in the canonical self-contained encoding the rest
of the repository already speaks: the event *type name* plus the flat
parameter mapping (:mod:`repro.events.canonical` — the type name alone
recovers the :class:`~repro.events.event.EventType`, including on-demand
``C[P]`` canonical types), mirroring how
:mod:`repro.core.serialization` ships process definitions as data.  Two
parameter value shapes JSON cannot express natively are tagged:

* ``frozenset`` (the ``processAssociations`` set of a ``T_context``
  event) becomes ``{"$fs": [...]}``, members sorted for deterministic
  bytes;
* ``tuple`` (association pairs, digest tuples) becomes ``{"$t": [...]}``;
* a mapping that itself contains a ``$``-prefixed key is wrapped as
  ``{"$d": {...}}`` so the tags can never be forged by payload data.

Recognition provenance travels as a parallel node tree so a worker's
instrumented pipeline can report full chains without pickling.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, IO, Iterator, List, Mapping, Optional

from ..errors import WireError
from ..events.canonical import CANONICAL_PREFIX, canonical_type, is_canonical
from ..events.event import Event, EventType
from ..events.external import NEWS_EVENT_TYPE
from ..events.producers import (
    ACTIVITY_EVENT_TYPE,
    CONTEXT_EVENT_TYPE,
    SYSTEM_EVENT_TYPE,
)
from ..observability.provenance import ProvenanceNode

#: Non-canonical event types resolvable by name.  Applications with
#: custom external event types extend this via :func:`register_event_type`
#: (in every process that decodes their events).
_TYPE_REGISTRY: Dict[str, EventType] = {}


def register_event_type(event_type: EventType) -> None:
    """Make *event_type* resolvable by name when decoding wire events."""
    _TYPE_REGISTRY[event_type.name] = event_type


def _register_builtins() -> None:
    from ..awareness.operators.output import DELIVERY_EVENT_TYPE

    for event_type in (
        ACTIVITY_EVENT_TYPE,
        CONTEXT_EVENT_TYPE,
        SYSTEM_EVENT_TYPE,
        NEWS_EVENT_TYPE,
        DELIVERY_EVENT_TYPE,
    ):
        register_event_type(event_type)


def resolve_event_type(type_name: str) -> EventType:
    """Recover the :class:`EventType` named *type_name*.

    Canonical ``C[P]`` types are minted (and cached) from the embedded
    process schema id; primitive planes and ``T_delivery`` come from the
    registry.
    """
    if is_canonical(type_name):
        return canonical_type(type_name[len(CANONICAL_PREFIX):-1])
    event_type = _TYPE_REGISTRY.get(type_name)
    if event_type is None:
        raise WireError(f"cannot resolve wire event type {type_name!r}")
    return event_type


# ---------------------------------------------------------------------------
# Parameter value encoding
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """JSON-safe encoding of one event parameter value."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, frozenset):
        members = sorted((encode_value(member) for member in value), key=repr)
        return {"$fs": members}
    if isinstance(value, tuple):
        return {"$t": [encode_value(member) for member in value]}
    if isinstance(value, list):
        return [encode_value(member) for member in value]
    if isinstance(value, Mapping):
        encoded = {key: encode_value(member) for key, member in value.items()}
        if any(key.startswith("$") for key in encoded):
            return {"$d": encoded}
        return encoded
    raise WireError(
        f"event parameter value {value!r} ({type(value).__name__}) is not "
        f"wire-encodable"
    )


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(member) for member in value]
    if isinstance(value, dict):
        if "$fs" in value:
            return frozenset(decode_value(member) for member in value["$fs"])
        if "$t" in value:
            return tuple(decode_value(member) for member in value["$t"])
        if "$d" in value:
            return {
                key: decode_value(member)
                for key, member in value["$d"].items()
            }
        return {key: decode_value(member) for key, member in value.items()}
    return value


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------


def event_to_wire(event: Event, provenance: bool = False) -> Dict[str, Any]:
    """Encode one event (type name + parameters [+ provenance chain])."""
    out: Dict[str, Any] = {
        "type": event.type_name,
        "params": {
            key: encode_value(value)
            for key, value in event._params.items()
            if key != "type"
        },
    }
    if provenance and event.provenance is not None:
        out["provenance"] = provenance_to_wire(event.provenance)
    return out


def event_from_wire(data: Mapping[str, Any]) -> Event:
    """Decode one event; restores frozensets/tuples and the provenance."""
    event_type = resolve_event_type(data["type"])
    params = {
        key: decode_value(value) for key, value in data["params"].items()
    }
    event = Event.trusted(event_type, params)
    chain = data.get("provenance")
    if chain is not None:
        event.provenance = provenance_from_wire(chain)
    return event


# ---------------------------------------------------------------------------
# Provenance chains
# ---------------------------------------------------------------------------


def provenance_to_wire(node: ProvenanceNode) -> Dict[str, Any]:
    """Encode a provenance node tree (summaries keep their raw shape)."""
    return {
        "id": node.event_id,
        "node": node.node,
        "kind": node.kind,
        "type": node.event_type,
        "t": node.logical_time,
        "summary": encode_value(node.summary),
        "in": [provenance_to_wire(child) for child in node.inputs],
    }


def provenance_from_wire(data: Mapping[str, Any]) -> ProvenanceNode:
    return ProvenanceNode(
        event_id=data["id"],
        node=data["node"],
        kind=data["kind"],
        event_type=data["type"],
        logical_time=data["t"],
        summary=decode_value(data["summary"]),
        inputs=tuple(provenance_from_wire(child) for child in data["in"]),
    )


#: Key under which an ``events`` frame carries its trace context —
#: the compact ``[trace_id, parent_span_id, sampled]`` list of
#: :meth:`repro.observability.trace.TraceContext.to_wire`.
TRACE_KEY = "trace"

#: Key under which an ``events`` frame carries its per-shard sequence
#: number — the credit-based flow control's unit of account.  Seqs are
#: assigned by the facade in send order and survive a respawn (the
#: replacement channel inherits the counter), so a journal-replayed
#: frame keeps its original number.
SEQ_KEY = "seq"

#: Key under which a worker response piggybacks its cumulative ack: the
#: highest event-frame sequence number fully ingested so far.  Rides
#: every ``stats``/``results`` frame; the facade uses it to retire
#: in-flight credits without a dedicated exchange.
ACKED_KEY = "acked"

#: Frame kind of the standalone credit grant a worker emits once enough
#: unacknowledged event frames accumulate between reads — the
#: lightweight path that keeps a write-heavy stream flowing when no
#: stats/flush response is due.
ACK_KIND = "ack"


def ack_frame(acked: int) -> Dict[str, Any]:
    """A standalone credit grant: cumulative ack through *acked*."""
    return {"kind": ACK_KIND, ACKED_KEY: acked}


def attach_trace(frame: Dict[str, Any], ctx: Optional[Any]) -> Dict[str, Any]:
    """Stamp *frame* with *ctx*'s wire form (no-op when ctx is ``None``).

    The facade's head-sampling decision travels inside the frame itself,
    so a worker (or a journal replay) sees exactly the decision the
    facade made for that wave of events — the cross-shard propagation
    contract of DESIGN note 11.
    """
    if ctx is not None:
        frame[TRACE_KEY] = ctx.to_wire()
    return frame


def extract_trace(frame: Mapping[str, Any]) -> Optional[Any]:
    """The frame's :class:`~repro.observability.trace.TraceContext`."""
    from ..observability.trace import TraceContext

    return TraceContext.from_wire(frame.get(TRACE_KEY))


def strip_trace_sampling(frame: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of *frame* with the trace sampling decision forced off.

    Journal replay uses this: the spans of a sampled wave were already
    shipped and assembled the first time around, so replaying the frame
    verbatim would re-record and double-count them.  The trace identity
    is kept (the frame remains attributable); only the record decision
    is cleared.  Frames without a trace context pass through unchanged.
    """
    trace = frame.get(TRACE_KEY)
    if not trace:
        return frame
    stripped = dict(frame)
    stripped[TRACE_KEY] = [trace[0], trace[1], 0]
    return stripped


def as_tuples(value: Any) -> Any:
    """Normalize a JSON round-tripped signature back to nested tuples.

    ``ProvenanceNode.signature()`` values are nested tuples; JSON turns
    tuples into lists, so worker-reported signatures are re-normalized
    before comparison with locally computed ones.
    """
    if isinstance(value, (list, tuple)):
        return tuple(as_tuples(member) for member in value)
    return value


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

_HEADER = struct.Struct(">I")

#: Refuse frames above this size — a corrupted length prefix must not
#: turn into a multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def frame_bytes(message: Mapping[str, Any]) -> bytes:
    """One length-prefixed JSON frame as bytes (a single write's worth)."""
    data = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(data)) + data


def write_frame(stream: IO[bytes], message: Mapping[str, Any]) -> None:
    """Write one length-prefixed JSON frame and flush it."""
    stream.write(frame_bytes(message))
    stream.flush()


def read_frame(stream: IO[bytes]) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF, :class:`WireError` mid-frame."""
    header = _read_exact(stream, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    data = _read_exact(stream, length, allow_eof=False)
    assert data is not None
    try:
        return json.loads(data.decode("utf-8"))
    except ValueError as error:
        raise WireError(f"malformed frame payload: {error}") from None


def iter_frames(stream: IO[bytes]) -> "Iterator[Dict[str, Any]]":
    """Yield frames until clean EOF; :class:`WireError` on a torn tail.

    The shared read loop of the worker channel and the write-ahead
    journal: both speak the same framing, so torn-tail detection (a
    partial header or payload at the end of a crashed writer's file)
    lives here once.
    """
    while True:
        frame = read_frame(stream)
        if frame is None:
            return
        yield frame


def _read_exact(
    stream: IO[bytes], count: int, allow_eof: bool
) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise WireError(
                f"channel closed mid-frame ({count - remaining}/{count} "
                f"bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if len(chunks) != 1 else chunks[0]


_register_builtins()
