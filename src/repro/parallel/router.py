"""Affinity routing: which shard owns an event?

QE2 established that operator state is partitioned per process instance
(Section 5.1.2 "process instance replication"), so the natural shard
affinity of the ``T_activity`` plane and of every canonical ``C[P]``
plane is the *process instance id*: all the state an event can touch
lives under that key, and co-locating the key co-locates the state.

``T_context`` events route by **context name**, not instance id: a
context resource can be associated with *several* process instances at
once (Figure 3's task-force context is shared with its information
request subprocesses), so an instance-keyed route would be ill-defined —
the same event would belong to several shards.  Routing the whole named
context to one shard keeps every observer of that context, whichever
instance it watches, on the shard that sees the context's events (see
DESIGN note 9).

External planes (``T_external``) route by correlation id — the paper's
news service stamps a ``queryId`` relating articles back to the
registering task force — and anything unrecognized falls back to the
event's ``source``, so routing is always total.  All defaults are
replaceable per type name via :meth:`ShardRouter.register` (the same
shape as ``EventOperator.routing_keys``: a callable from event to
hashable key).

Hashing is ``zlib.crc32`` over the key's string form: Python's ``hash``
is salted per process, and the router must agree with itself across the
facade and every worker.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, Hashable, Optional

from ..events.canonical import is_canonical
from ..events.event import Event
from ..events.external import NEWS_EVENT_TYPE_NAME
from ..events.producers import (
    ACTIVITY_EVENT_TYPE_NAME,
    CONTEXT_EVENT_TYPE_NAME,
    SYSTEM_EVENT_TYPE_NAME,
)

KeyExtractor = Callable[[Event], Hashable]

#: Entries kept in the router's key-to-shard memo before it resets.
#: Affinity keys are heavily repeated (every event of one process
#: instance, context, or system carries the same key), so a small cache
#: absorbs nearly all the ``repr`` + crc32 work on the ingest hot path.
ROUTER_CACHE_MAX = 4096


def activity_affinity(event: Event) -> Hashable:
    """``T_activity``: the owning process instance (QE2's partition key)."""
    params = event.params
    return params.get("parentProcessInstanceId") or params["activityInstanceId"]


def context_affinity(event: Event) -> Hashable:
    """``T_context``: the context *name* (associations may span instances)."""
    return event.params["contextName"]


def system_affinity(event: Event) -> Hashable:
    """``T_system``: the reporting system — its series are one state."""
    return event.params["systemId"]


def external_affinity(event: Event) -> Hashable:
    """External planes: correlation id, with a total fallback chain."""
    params = event.params
    for name in ("correlationId", "queryId"):
        value = params.get(name)
        if value is not None:
            return value
    return params["source"]


def canonical_affinity(event: Event) -> Hashable:
    """``C[P]`` planes: the process instance the state is replicated on."""
    return event.params["processInstanceId"]


class ShardRouter:
    """Deterministic event-to-shard assignment by affinity key."""

    def __init__(self) -> None:
        self._extractors: Dict[str, KeyExtractor] = {
            ACTIVITY_EVENT_TYPE_NAME: activity_affinity,
            CONTEXT_EVENT_TYPE_NAME: context_affinity,
            SYSTEM_EVENT_TYPE_NAME: system_affinity,
            NEWS_EVENT_TYPE_NAME: external_affinity,
        }
        #: Memoized ``(key, shard_count) -> shard`` results.  Purely a
        #: cache of :meth:`shard_for_key` (which depends on nothing but
        #: its arguments), so extractor registration never invalidates
        #: it.  Bounded: a full cache is cleared, not evicted — the hot
        #: keys repopulate it within one batch.
        self._shard_cache: Dict[Any, int] = {}

    def register(self, type_name: str, extractor: KeyExtractor) -> None:
        """Install (or replace) the affinity extractor for *type_name*.

        Applications with custom external event types register the
        extractor that names their correlation parameter, exactly as
        operators declare ``routing_keys``.
        """
        self._extractors[type_name] = extractor

    def extractor_for(self, type_name: str) -> Optional[KeyExtractor]:
        extractor = self._extractors.get(type_name)
        if extractor is None and is_canonical(type_name):
            return canonical_affinity
        return extractor

    def affinity_key(self, event: Event) -> Hashable:
        """The hashable affinity key of *event* (total: always returns)."""
        extractor = self.extractor_for(event.type_name)
        if extractor is None:
            extractor = external_affinity
        return extractor(event)

    def shard_for(self, event: Event, shard_count: int) -> int:
        """The shard index in ``[0, shard_count)`` owning *event*."""
        if shard_count <= 1:
            return 0
        key = self.affinity_key(event)
        cache_key = (key, shard_count)
        try:
            cached = self._shard_cache.get(cache_key)
        except TypeError:
            # An unhashable custom key: fall through to the hash.
            return self.shard_for_key(key, shard_count)
        if cached is not None:
            return cached
        shard = self.shard_for_key(key, shard_count)
        if len(self._shard_cache) >= ROUTER_CACHE_MAX:
            self._shard_cache.clear()
        self._shard_cache[cache_key] = shard
        return shard

    @staticmethod
    def shard_for_key(key: Hashable, shard_count: int) -> int:
        """Hash an affinity key; stable across processes and runs."""
        if shard_count <= 1:
            return 0
        digest = zlib.crc32(repr(key).encode("utf-8"))
        return digest % shard_count
