"""Sharded multi-core enactment (the scale-out layer).

The paper's Enactment System is "a collection of communicating agents
acting as a single server" (Section 6.1) — a logical architecture that
never required a single interpreter.  This package partitions one
federation's work across N shards by *affinity key* (the process
instance id for activity/canonical planes, the context name for
``T_context``, the correlation id for external planes), each shard
hosting a full producers → bus → detectors → delivery pipeline, with a
facade that keeps the single-system API and merges the notification
streams deterministically.

Entry points:

* :class:`~repro.parallel.federation.ShardedFederation` — the facade;
* :class:`~repro.parallel.federation.ShardConfig` — shard count and the
  ``serial`` / ``process`` backend switch;
* :class:`~repro.parallel.host.FederationBlueprint` /
  :class:`~repro.parallel.host.ShardSpec` — the data-only bootstrap;
* :class:`~repro.parallel.router.ShardRouter` — affinity routing;
* :mod:`~repro.parallel.codec` — the binary wire codec the shard
  channels and write-ahead journals speak by default
  (``ShardConfig(wire_codec="json")`` restores the debuggable JSON
  framing).
"""

from .codec import (
    WIRE_CODECS,
    BinaryDecoder,
    BinaryEncoder,
    make_reader,
    make_writer,
)
from .federation import (
    BACKENDS,
    ShardConfig,
    ShardedFederation,
    ShardNotification,
)
from .host import FederationBlueprint, RecordingDeliveryQueue, ShardHost, ShardSpec
from .router import ShardRouter
from .wire import (
    event_from_wire,
    event_to_wire,
    read_frame,
    register_event_type,
    write_frame,
)

__all__ = [
    "BACKENDS",
    "BinaryDecoder",
    "BinaryEncoder",
    "FederationBlueprint",
    "RecordingDeliveryQueue",
    "ShardConfig",
    "ShardHost",
    "ShardNotification",
    "ShardRouter",
    "ShardSpec",
    "ShardedFederation",
    "WIRE_CODECS",
    "event_from_wire",
    "event_to_wire",
    "make_reader",
    "make_writer",
    "read_frame",
    "register_event_type",
    "write_frame",
]
