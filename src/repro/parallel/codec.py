"""The binary wire codec: one serialization fast path for shards and
the journal.

Frames on a binary channel keep the JSON path's *framing* — a 4-byte
big-endian length prefix per frame — but the payload is a compact
type-tagged binary encoding instead of a UTF-8 JSON document, and the
values inside are the *native* objects the pipeline speaks: ``Event``
instances, nested tuples, frozensets, and provenance node trees cross
the channel without the ``event_to_wire`` / ``encode_value`` tag-dict
detour (``$fs`` / ``$t`` / ``$d``) the JSON path pays per value.

**Value encoding.**  Every value is one tag byte followed by its body:

========  =====================================================
tag       body
========  =====================================================
``NONE``  —
``TRUE``  —
``FALSE`` —
``INT``   zigzag varint (arbitrary precision)
``FLOAT`` IEEE-754 big-endian double
``STR``   varint byte length + UTF-8 (not interned)
``DEF``   varint byte length + UTF-8; *defines* the next string id
``REF``   varint string id (see interning below)
``LIST``  varint count + members
``TUPLE`` varint count + members
``FSET``  varint count + members, sorted by ``repr`` for
          deterministic bytes (mirrors the JSON path)
``DICT``  varint count + alternating key/value members
``EVENT`` event type name, key-schema tuple, the parameter
          values in key order (``type`` skipped), provenance flag
          byte + optional provenance tree
``PROV``  provenance node: id, node, kind, type, logical time,
          summary, varint child count + children
``CDEF``  *defines* the next compound id; body is the
          TUPLE/FSET it wraps
``CREF``  varint compound id
========  =====================================================

**Per-channel interning.**  Each channel direction owns one encoder and
one mirroring decoder.  The first time a short string (≤
:data:`INTERN_MAX` UTF-8 bytes) is encoded it travels as an inline
``DEF`` record and both sides append it to their string table; every
later occurrence is a 2–3 byte ``REF``.  Hashable tuples and frozensets
(association pairs, ``processAssociations`` sets, and — crucially — the
per-event *key schema*, the tuple of parameter names) intern the same
way through ``CDEF``/``CREF``: a steady-state event is its type-name
ref, its key-schema ref, and its parameter values, nothing else.
Compound ids are assigned in **post-order** (a definition completes,
and numbers, after its members) because that is the only order an
streaming decoder can mirror without backpatching.

Tables are *per channel instance*: a fresh worker (respawn after a
crash) gets a fresh writer/reader pair, and a compacted journal is
rewritten under a fresh encoder, so every replay cut is
self-contained — a decoder starting at the file's first frame sees
every ``DEF`` it needs.

**Error discipline.**  A truncated, torn, or corrupt payload raises
:class:`~repro.errors.WireError` — never ``IndexError`` or a crash —
and leaves the decoder's tables undefined: callers must
:meth:`~BinaryDecoder.reset` (or discard) the decoder after an error.
"""

from __future__ import annotations

import struct
from types import MappingProxyType
from typing import Any, Dict, IO, List, Mapping, Optional, Tuple

from ..errors import WireError
from ..events.event import Event
from ..observability.provenance import ProvenanceNode
from .wire import (
    MAX_FRAME_BYTES,
    _read_exact,
    read_frame,
    resolve_event_type,
    write_frame,
)

#: The codecs a shard channel (and the journal) can speak.
WIRE_CODECS = ("binary", "json")

#: Strings longer than this many UTF-8 bytes are not interned (one-off
#: payload text should not occupy table slots).
INTERN_MAX = 64

#: Upper bound on interned entries per table; beyond it, values encode
#: inline (correct, just less compact).
INTERN_CAP = 1 << 15

# Value tags.
T_NONE = 0
T_TRUE = 1
T_FALSE = 2
T_INT = 3
T_FLOAT = 4
T_STR = 5
T_DEF = 6
T_REF = 7
T_LIST = 8
T_TUPLE = 9
T_FSET = 10
T_DICT = 11
T_EVENT = 12
T_PROV = 13
T_CDEF = 14
T_CREF = 15

_pack_into = struct.pack_into
_pack_d = struct.Struct(">d").pack
_unpack_d = struct.Struct(">d").unpack_from
_HEADER = struct.Struct(">I")
_new_event = object.__new__

# ---------------------------------------------------------------------------
# Channel negotiation (the hello frame)
# ---------------------------------------------------------------------------

#: First bytes on a worker pipe: magic, protocol version, codec byte.
HELLO_MAGIC = b"RPW1"
_HELLO_BYTE = {"json": 0, "binary": 1}
_HELLO_CODEC = {byte: codec for codec, byte in _HELLO_BYTE.items()}


def hello_bytes(codec: str) -> bytes:
    """The channel-opening bytes: magic + codec byte, before any frame.

    Exposed separately from :func:`write_hello` for writers that manage
    raw file descriptors (the facade's multiplexer) rather than
    buffered streams.
    """
    return HELLO_MAGIC + bytes((_HELLO_BYTE[codec],))


def write_hello(stream: IO[bytes], codec: str) -> None:
    """Open a channel: magic + codec byte, before any frame."""
    stream.write(hello_bytes(codec))
    stream.flush()


def read_hello(stream: IO[bytes]) -> str:
    """Read the peer's hello; returns the negotiated codec name."""
    data = _read_exact(stream, len(HELLO_MAGIC) + 1, allow_eof=False)
    assert data is not None
    if data[: len(HELLO_MAGIC)] != HELLO_MAGIC:
        raise WireError(
            f"bad channel hello {data[:len(HELLO_MAGIC)]!r} "
            f"(expected {HELLO_MAGIC!r})"
        )
    codec = _HELLO_CODEC.get(data[-1])
    if codec is None:
        raise WireError(f"unknown wire codec byte {data[-1]!r} in hello")
    return codec


# ---------------------------------------------------------------------------
# Varints
# ---------------------------------------------------------------------------


def _varint(buf: bytearray, n: int) -> None:
    while n > 0x7F:
        buf.append((n & 0x7F) | 0x80)
        n >>= 7
    buf.append(n)


def _ref_bytes(tag: int, n: int) -> bytes:
    out = bytearray((tag,))
    _varint(out, n)
    return bytes(out)


#: Precomputed ``INT`` encodings for small non-negative ints (logical
#: times, sequence numbers, counters — the bulk of numeric traffic).
_INT_CACHE: List[bytes] = []
for _small in range(2048):
    _cached = bytearray((T_INT,))
    _varint(_cached, _small << 1)
    _INT_CACHE.append(bytes(_cached))
del _small, _cached


# ---------------------------------------------------------------------------
# Encoder
# ---------------------------------------------------------------------------


class BinaryEncoder:
    """One channel direction's stateful encoder.

    Reuses a single ``bytearray`` across frames (no per-frame
    allocation growth) and keeps the interning tables between frames —
    the whole point: steady-state frames are almost entirely refs.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        #: str -> precomputed ``REF`` bytes.
        self._refs: Dict[str, bytes] = {}
        self._count = 0
        #: hashable tuple/frozenset -> precomputed ``CREF`` bytes.
        self._crefs: Dict[Any, bytes] = {}
        self._ccount = 0

    def reset(self) -> None:
        """Drop the interning tables (respawn / compaction boundary)."""
        self._refs.clear()
        self._count = 0
        self._crefs.clear()
        self._ccount = 0

    def seed(self, strings: List[str], compounds: List[Any]) -> None:
        """Adopt a decoder's tables (reopening an existing journal).

        ``strings`` / ``compounds`` must be the define-order tables of a
        :class:`BinaryDecoder` that consumed every frame this encoder's
        stream already carries; encoding continues exactly where the
        previous writer left off.
        """
        self.reset()
        for index, text in enumerate(strings):
            self._refs[text] = _ref_bytes(T_REF, index)
        self._count = len(strings)
        for index, compound in enumerate(compounds):
            try:
                self._crefs[compound] = _ref_bytes(T_CREF, index)
            except TypeError:  # pragma: no cover - decoder never defines
                pass  # an unhashable compound; defensive only
        self._ccount = len(compounds)

    # -- encoding ----------------------------------------------------------

    def encode_frame(self, frame: Mapping[str, Any]) -> bytes:
        """One length-prefixed binary frame, ready for a single write."""
        buf = self._buf
        del buf[:]
        buf += b"\x00\x00\x00\x00"
        self._value(buf, frame if type(frame) is dict else dict(frame))
        size = len(buf) - 4
        if size > MAX_FRAME_BYTES:
            raise WireError(
                f"frame length {size} exceeds {MAX_FRAME_BYTES}"
            )
        _pack_into(">I", buf, 0, size)
        return bytes(buf)

    def _define(self, buf: bytearray, text: str) -> None:
        raw = text.encode("utf-8")
        size = len(raw)
        if size <= INTERN_MAX and self._count < INTERN_CAP:
            buf.append(T_DEF)
            _varint(buf, size)
            buf += raw
            self._refs[text] = _ref_bytes(T_REF, self._count)
            self._count += 1
        else:
            buf.append(T_STR)
            _varint(buf, size)
            buf += raw

    def _value(self, buf: bytearray, value: Any) -> None:
        kind = type(value)
        if kind is str:
            ref = self._refs.get(value)
            if ref is not None:
                buf += ref
            else:
                self._define(buf, value)
        elif kind is int:
            if 0 <= value < 2048:
                buf += _INT_CACHE[value]
            else:
                buf.append(T_INT)
                _varint(
                    buf,
                    (value << 1) if value >= 0 else (((-value) << 1) - 1),
                )
        # Events come third: an ``events`` frame is mostly a list of
        # them, and each list member dispatches through here.
        elif kind is Event:
            buf.append(T_EVENT)
            self._event(buf, value)
        elif kind is bool:
            buf.append(T_TRUE if value else T_FALSE)
        elif value is None:
            buf.append(T_NONE)
        elif kind is float:
            buf.append(T_FLOAT)
            buf += _pack_d(value)
        elif kind is tuple or kind is frozenset:
            try:
                ref = self._crefs.get(value)
                internable = True
            except TypeError:  # tuple holding an unhashable member
                ref = None
                internable = False
            if ref is not None:
                buf += ref
                return
            intern = internable and self._ccount < INTERN_CAP
            if intern:
                buf.append(T_CDEF)
            members = (
                sorted(value, key=repr) if kind is frozenset else value
            )
            buf.append(T_TUPLE if kind is tuple else T_FSET)
            _varint(buf, len(members))
            encode = self._value
            for member in members:
                encode(buf, member)
            if intern:
                # Post-order id assignment: nested compounds complete
                # (and number) first, matching the decoder's
                # append-after-decode order.
                self._crefs[value] = _ref_bytes(T_CREF, self._ccount)
                self._ccount += 1
        elif kind is dict:
            buf.append(T_DICT)
            _varint(buf, len(value))
            encode = self._value
            for key, member in value.items():
                encode(buf, key)
                encode(buf, member)
        elif kind is list:
            buf.append(T_LIST)
            _varint(buf, len(value))
            encode = self._value
            event = self._event
            for member in value:
                # A wave's ``events`` list is the hot list shape: skip
                # the generic dispatch frame for its members.
                if type(member) is Event:
                    buf.append(T_EVENT)
                    event(buf, member)
                else:
                    encode(buf, member)
        elif kind is ProvenanceNode:
            buf.append(T_PROV)
            self._provenance(buf, value)
        elif isinstance(value, Mapping):
            self._value(buf, dict(value))
        else:
            raise WireError(
                f"value {value!r} ({kind.__name__}) is not wire-encodable"
            )

    def _event(self, buf: bytearray, event: Event) -> None:
        refs_get = self._refs.get
        crefs_get = self._crefs.get
        name = event._event_type.name
        ref = refs_get(name)
        if ref is not None:
            buf += ref
        else:
            self._define(buf, name)
        params = event._params
        keys = tuple(params)
        ref = crefs_get(keys)
        if ref is not None:
            buf += ref
        else:
            self._value(buf, keys)
        int_cache = _INT_CACHE
        encode = self._value
        for key, value in params.items():
            if key == "type":
                continue
            kind = type(value)
            if kind is str:
                ref = refs_get(value)
                if ref is not None:
                    buf += ref
                else:
                    self._define(buf, value)
            elif kind is int and 0 <= value < 2048:
                buf += int_cache[value]
            elif kind is tuple or kind is frozenset:
                try:
                    ref = crefs_get(value)
                except TypeError:
                    ref = None
                if ref is not None:
                    buf += ref
                else:
                    encode(buf, value)
            else:
                encode(buf, value)
        chain = event.provenance
        if chain is None:
            buf.append(0)
        else:
            buf.append(1)
            self._provenance(buf, chain)

    def _provenance(self, buf: bytearray, node: ProvenanceNode) -> None:
        encode = self._value
        encode(buf, node.event_id)
        encode(buf, node.node)
        encode(buf, node.kind)
        encode(buf, node.event_type)
        encode(buf, node.logical_time)
        encode(buf, node.summary)
        inputs = node.inputs
        _varint(buf, len(inputs))
        for child in inputs:
            self._provenance(buf, child)


# ---------------------------------------------------------------------------
# Decoder
# ---------------------------------------------------------------------------

#: Exceptions a corrupt payload can surface as; all become WireError.
_DECODE_ERRORS = (
    IndexError,
    KeyError,
    OverflowError,
    TypeError,
    UnicodeDecodeError,
    ValueError,
    struct.error,
)


class BinaryDecoder:
    """The mirror of :class:`BinaryEncoder`: same stream, same tables."""

    def __init__(self) -> None:
        self._strings: List[str] = []
        self._compounds: List[Any] = []
        self._types: Dict[str, Any] = {}

    def reset(self) -> None:
        """Drop the interning tables (respawn / compaction boundary)."""
        self._strings.clear()
        self._compounds.clear()

    @property
    def interned_strings(self) -> List[str]:
        """The string table in define order (for :meth:`BinaryEncoder.seed`)."""
        return list(self._strings)

    @property
    def interned_compounds(self) -> List[Any]:
        """The compound table in define order."""
        return list(self._compounds)

    # -- decoding ----------------------------------------------------------

    def decode_payload(self, data: Any) -> Dict[str, Any]:
        """Decode one frame payload (``bytes`` or ``memoryview``).

        Raises :class:`WireError` on truncated, trailing, or corrupt
        bytes; the tables are then undefined — reset or discard.
        """
        try:
            value, pos = self._value(data, 0)
        except WireError:
            raise
        except _DECODE_ERRORS as error:
            raise WireError(
                f"malformed binary frame payload: "
                f"{type(error).__name__}: {error}"
            ) from None
        if pos != len(data):
            raise WireError(
                f"binary frame payload has {len(data) - pos} trailing "
                f"bytes"
            )
        if type(value) is not dict:
            raise WireError(
                f"binary frame payload decoded to "
                f"{type(value).__name__}, not a frame mapping"
            )
        return value

    def _value(self, data: Any, pos: int) -> Tuple[Any, int]:
        tag = data[pos]
        pos += 1
        if tag == T_REF:
            n = data[pos]
            pos += 1
            if n >= 0x80:
                n &= 0x7F
                shift = 7
                while True:
                    b = data[pos]
                    pos += 1
                    n |= (b & 0x7F) << shift
                    if b < 0x80:
                        break
                    shift += 7
            return self._strings[n], pos
        if tag == T_INT:
            n = data[pos]
            pos += 1
            if n >= 0x80:
                n &= 0x7F
                shift = 7
                while True:
                    b = data[pos]
                    pos += 1
                    n |= (b & 0x7F) << shift
                    if b < 0x80:
                        break
                    shift += 7
            return (n >> 1) ^ -(n & 1), pos
        if tag == T_CREF:
            n = data[pos]
            pos += 1
            if n >= 0x80:
                n &= 0x7F
                shift = 7
                while True:
                    b = data[pos]
                    pos += 1
                    n |= (b & 0x7F) << shift
                    if b < 0x80:
                        break
                    shift += 7
            return self._compounds[n], pos
        # Events come fourth: an ``events`` frame is mostly a list of
        # them, and each list member dispatches through here.
        if tag == T_EVENT:
            return self._event(data, pos)
        if tag == T_DEF:
            n, pos = self._varint(data, pos)
            end = pos + n
            if end > len(data):
                raise WireError("binary frame truncated inside a string")
            text = str(data[pos:end], "utf-8")
            self._strings.append(text)
            return text, end
        if tag == T_CDEF:
            value, pos = self._value(data, pos)
            self._compounds.append(value)
            return value, pos
        if tag == T_STR:
            n, pos = self._varint(data, pos)
            end = pos + n
            if end > len(data):
                raise WireError("binary frame truncated inside a string")
            return str(data[pos:end], "utf-8"), end
        if tag == T_NONE:
            return None, pos
        if tag == T_TRUE:
            return True, pos
        if tag == T_FALSE:
            return False, pos
        if tag == T_FLOAT:
            return _unpack_d(data, pos)[0], pos + 8
        if tag == T_TUPLE or tag == T_FSET:
            n, pos = self._varint(data, pos)
            out: List[Any] = []
            decode = self._value
            for __ in range(n):
                member, pos = decode(data, pos)
                out.append(member)
            return (
                tuple(out) if tag == T_TUPLE else frozenset(out)
            ), pos
        if tag == T_DICT:
            n, pos = self._varint(data, pos)
            mapping: Dict[Any, Any] = {}
            decode = self._value
            for __ in range(n):
                key, pos = decode(data, pos)
                member, pos = decode(data, pos)
                mapping[key] = member
            return mapping, pos
        if tag == T_LIST:
            n, pos = self._varint(data, pos)
            items: List[Any] = []
            decode = self._value
            event = self._event
            append = items.append
            for __ in range(n):
                # A wave's ``events`` list is the hot list shape: skip
                # the generic dispatch frame for its members.
                if data[pos] == T_EVENT:
                    member, pos = event(data, pos + 1)
                else:
                    member, pos = decode(data, pos)
                append(member)
            return items, pos
        if tag == T_PROV:
            return self._provenance(data, pos)
        raise WireError(f"unknown binary value tag {tag}")

    def _varint(self, data: Any, pos: int) -> Tuple[int, int]:
        n = data[pos]
        pos += 1
        if n < 0x80:
            return n, pos
        n &= 0x7F
        shift = 7
        while True:
            b = data[pos]
            pos += 1
            n |= (b & 0x7F) << shift
            if b < 0x80:
                return n, pos
            shift += 7

    def _event(self, data: Any, pos: int) -> Tuple[Event, int]:
        strings = self._strings
        compounds = self._compounds
        decode = self._value
        # Type name: nearly always a single-byte REF.
        tag = data[pos]
        if tag == T_REF:
            b = data[pos + 1]
            if b < 0x80:
                name = strings[b]
                pos += 2
            else:
                name, pos = decode(data, pos)
        else:
            name, pos = decode(data, pos)
        event_type = self._types.get(name)
        if event_type is None:
            event_type = self._types[name] = resolve_event_type(name)
        # Key schema: nearly always a single-byte CREF.
        tag = data[pos]
        if tag == T_CREF:
            b = data[pos + 1]
            if b < 0x80:
                keys = compounds[b]
                pos += 2
            else:
                keys, pos = decode(data, pos)
        else:
            keys, pos = decode(data, pos)
        if type(keys) is not tuple:
            raise WireError("event key schema is not a tuple")
        params: Dict[str, Any] = {}
        for key in keys:
            if key == "type":
                continue
            tag = data[pos]
            if tag == T_REF:
                b = data[pos + 1]
                if b < 0x80:
                    value: Any = strings[b]
                    pos += 2
                else:
                    value, pos = decode(data, pos)
            elif tag == T_INT:
                b = data[pos + 1]
                if b < 0x80:
                    value = (b >> 1) ^ -(b & 1)
                    pos += 2
                else:
                    b2 = data[pos + 2]
                    if b2 < 0x80:
                        n = (b & 0x7F) | (b2 << 7)
                        value = (n >> 1) ^ -(n & 1)
                        pos += 3
                    else:
                        value, pos = decode(data, pos)
            elif tag == T_CREF:
                b = data[pos + 1]
                if b < 0x80:
                    value = compounds[b]
                    pos += 2
                else:
                    value, pos = decode(data, pos)
            else:
                value, pos = decode(data, pos)
            params[key] = value
        # Inlined ``Event.trusted``: the decoder owns *params* and knows
        # ``"type"`` was skipped on encode, so the setdefault is a plain
        # store and the classmethod dispatch is skipped entirely.
        params["type"] = event_type.name
        event = _new_event(Event)
        event._event_type = event_type
        event._params = MappingProxyType(params)
        event.provenance = None
        flag = data[pos]
        pos += 1
        if flag:
            chain, pos = self._provenance(data, pos)
            event.provenance = chain
        return event, pos

    def _provenance(self, data: Any, pos: int) -> Tuple[ProvenanceNode, int]:
        decode = self._value
        event_id, pos = decode(data, pos)
        node, pos = decode(data, pos)
        kind, pos = decode(data, pos)
        event_type, pos = decode(data, pos)
        logical_time, pos = decode(data, pos)
        summary, pos = decode(data, pos)
        count, pos = self._varint(data, pos)
        children: List[ProvenanceNode] = []
        for __ in range(count):
            child, pos = self._provenance(data, pos)
            children.append(child)
        return (
            ProvenanceNode(
                event_id=event_id,
                node=node,
                kind=kind,
                event_type=event_type,
                logical_time=logical_time,
                summary=summary,
                inputs=tuple(children),
            ),
            pos,
        )


# ---------------------------------------------------------------------------
# Channel wrappers: one writer/reader pair per pipe direction
# ---------------------------------------------------------------------------


class BinaryFrameWriter:
    """Writes binary frames to a stream; one encoder, one write per frame."""

    codec = "binary"

    def __init__(self, stream: IO[bytes]) -> None:
        self._stream = stream
        self.encoder = BinaryEncoder()

    def write(self, frame: Mapping[str, Any]) -> None:
        # One buffer, one write call, one flush: a batch frame (a whole
        # dispatch wave) crosses the pipe as a single ``os.write``.
        self._stream.write(self.encoder.encode_frame(frame))
        self._stream.flush()

    def reset(self) -> None:
        self.encoder.reset()


class BinaryFrameReader:
    """Reads binary frames from a stream; mirrors one writer's tables."""

    codec = "binary"

    def __init__(self, stream: IO[bytes]) -> None:
        self._stream = stream
        self.decoder = BinaryDecoder()

    def read(self) -> Optional[Dict[str, Any]]:
        header = _read_exact(self._stream, _HEADER.size, allow_eof=True)
        if header is None:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise WireError(
                f"frame length {length} exceeds {MAX_FRAME_BYTES}"
            )
        data = _read_exact(self._stream, length, allow_eof=False)
        assert data is not None
        return self.decoder.decode_payload(data)

    def reset(self) -> None:
        self.decoder.reset()


class JsonFrameWriter:
    """The JSON debug/compat path behind the same writer surface."""

    codec = "json"

    def __init__(self, stream: IO[bytes]) -> None:
        self._stream = stream

    def write(self, frame: Mapping[str, Any]) -> None:
        write_frame(self._stream, frame)

    def reset(self) -> None:  # noqa: D102 - no state to reset
        pass


class JsonFrameReader:
    """The JSON debug/compat path behind the same reader surface."""

    codec = "json"

    def __init__(self, stream: IO[bytes]) -> None:
        self._stream = stream

    def read(self) -> Optional[Dict[str, Any]]:
        return read_frame(self._stream)

    def reset(self) -> None:  # noqa: D102 - no state to reset
        pass


FrameWriter = Any  # BinaryFrameWriter | JsonFrameWriter
FrameReader = Any  # BinaryFrameReader | JsonFrameReader


def make_writer(stream: IO[bytes], codec: str) -> Any:
    """The frame writer for *codec* over *stream*."""
    if codec == "binary":
        return BinaryFrameWriter(stream)
    if codec == "json":
        return JsonFrameWriter(stream)
    raise WireError(
        f"unknown wire codec {codec!r}; expected one of {WIRE_CODECS}"
    )


def make_reader(stream: IO[bytes], codec: str) -> Any:
    """The frame reader for *codec* over *stream*."""
    if codec == "binary":
        return BinaryFrameReader(stream)
    if codec == "json":
        return JsonFrameReader(stream)
    raise WireError(
        f"unknown wire codec {codec!r}; expected one of {WIRE_CODECS}"
    )


def events_frame(events: List[Event], codec: str) -> Dict[str, Any]:
    """The ``events`` frame for *codec*.

    A binary channel carries the events themselves (the codec encodes
    them natively); a JSON channel carries their ``event_to_wire``
    dicts.  The same shapes land in the write-ahead journal, which
    shares the channel's codec.
    """
    if codec == "binary":
        return {"kind": "events", "events": list(events)}
    from .wire import event_to_wire

    return {
        "kind": "events",
        "events": [event_to_wire(event) for event in events],
    }


# ---------------------------------------------------------------------------
# Debug rendering
# ---------------------------------------------------------------------------


def frame_to_jsonable(value: Any) -> Any:
    """A decoded binary frame as the JSON path would have carried it.

    ``repro journal inspect`` uses this so a binary journal
    pretty-prints identically to a JSON one: raw events become their
    ``event_to_wire`` form, tuples/frozensets their ``$t``/``$fs``
    tags.
    """
    from .wire import encode_value, event_to_wire

    if isinstance(value, Event):
        return event_to_wire(value, provenance=True)
    if isinstance(value, dict):
        return {
            key: frame_to_jsonable(member) for key, member in value.items()
        }
    if isinstance(value, list):
        return [frame_to_jsonable(member) for member in value]
    if isinstance(value, (tuple, frozenset)):
        return encode_value(value)
    if isinstance(value, ProvenanceNode):
        from .wire import provenance_to_wire

        return provenance_to_wire(value)
    return value
