"""Sharded multi-core enactment: the single-system facade.

:class:`ShardedFederation` partitions one federation's event work across
N shards while keeping the single-system API: events go in
(:meth:`ShardedFederation.ingest`), specifications deploy and undeploy
federation-wide, notifications come back as one deterministically merged
stream, and ``stats()`` aggregates so the observability surfaces
(``repro shards``, ``repro top``, health views) read one federation.

Two backends, selected by :class:`ShardConfig`:

* ``serial`` (default) — every shard is an in-process
  :class:`~repro.parallel.host.ShardHost`; zero IPC, zero encoding.
  Tier-1 tests and the differential suites run here: the routing, the
  merge, and the facade logic are identical to the process backend, so
  correctness is cheap to check.
* ``process`` — each shard is a forked OS worker running
  :func:`~repro.parallel.worker.worker_main`; events cross a
  length-prefixed wire in routed batches, and recognition runs on as
  many cores as there are shards.

**Deterministic merge.**  Each shard reports its notifications with a
per-shard sequence number (enqueue order).  The facade sorts the union
by ``(logical time, shard id, sequence)`` — a total order that depends
only on the event streams, never on worker scheduling.  Because every
affinity key lives on exactly one shard, a process instance's
notifications share a shard and their sequence numbers preserve
recognition order: the merged stream is a deterministic reordering of
the serial stream with per-instance order intact (QE11 asserts this).

**Crash containment.**  A dead worker surfaces as a structured log entry
plus :class:`~repro.errors.ShardCrashError` on the next interaction —
never a hang: reads fail fast on EOF, and shutdown uses a poison pill
with a join timeout before escalating to ``terminate()``.

**Overlapped I/O.**  On the process backend every collective —
:meth:`ShardedFederation.drain`, deploy/undeploy sync, ``stats()``,
``refresh_observability()`` — broadcasts its request to every live
shard first and then gathers the responses as they arrive through one
:class:`~repro.parallel.mux.ChannelMultiplexer`, so a collective costs
the slowest shard, not the sum of all shards.  Ingest is flow
controlled per shard: event frames carry sequence numbers, workers ack
them (piggybacked on responses, standalone past a threshold), and at
most ``ShardConfig.max_inflight`` frames ride each pipe — a hot shard
defers *its own* batches in the facade buffer while the rest of the
wave keeps shipping (see DESIGN note 13).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ParallelError, ShardCrashError
from ..events.event import Event
from ..observability import INSTRUMENTATION as _OBS
from ..observability import STRUCTURED_LOG as _SLOG
from ..observability.health import SloRule, SystemHealth
from ..observability.logging import FederationLogView
from ..observability.registry import (
    Counter,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from ..observability.selfawareness import FederationMetricsView
from ..observability.trace import (
    DEFAULT_SAMPLE_EVERY,
    TraceAssembler,
    TraceContext,
)
from .codec import (
    WIRE_CODECS,
    events_frame,
    hello_bytes,
)
from .host import FederationBlueprint, ShardHost, ShardSpec
from .mux import ChannelMultiplexer, MuxChannel, inflight_snapshot
from .router import ShardRouter
from .wire import (
    SEQ_KEY,
    as_tuples,
    attach_trace,
    decode_value,
)

BACKENDS = ("serial", "process")

#: Gather-latency histogram buckets (microseconds): collectives span
#: everything from a warm two-shard stats poll to a drain that waits on
#: a recognition-heavy worker.
GATHER_LATENCY_BUCKETS = (
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    250_000.0,
    1_000_000.0,
)

#: Response frame kind per collective operation.
_COLLECTIVE_RESPONSE = {"flush": "results", "stats": "stats"}

#: Shard id under which the facade process's own structured-log records
#: appear in the merged federation view (serial shards share the facade
#: process, so their records land here too).
FACADE_SHARD = -1

#: An observability shipment handler: receives the ``observability``
#: payload a shard piggybacked on a stats/flush exchange.
ObservabilitySink = Optional[Any]


@dataclass(frozen=True)
class ShardConfig:
    """Knobs of the sharded execution layer."""

    shards: int = 1
    backend: str = "serial"
    #: Events buffered per shard before a routed batch is sent.
    batch_size: int = 128
    #: Enable tracing/provenance inside each shard's pipeline (workers
    #: flip their own process-global instrumentation plane).
    instrument: bool = False
    share_plans: bool = True
    #: Seconds to wait for a worker to honor the poison pill before it
    #: is terminated.
    join_timeout: float = 5.0
    #: Root directory for per-shard journals and snapshots.  Setting it
    #: (process backend only) wraps every shard in a
    #: :class:`~repro.durability.supervisor.SupervisedShard`: mutations
    #: are journaled before dispatch and a crashed worker is respawned
    #: from its latest snapshot plus journal-tail replay.
    durable_dir: Optional[str] = None
    #: fsync the journal once per this many appends (0 = rely on the OS;
    #: a facade-process crash then still loses nothing, only a machine
    #: crash can).
    fsync_every: int = 16
    #: Take a shard snapshot (and compact its journal) every this many
    #: journaled frames; 0 disables snapshots — recovery replays the
    #: whole journal.
    snapshot_every: int = 256
    #: Recoveries allowed per shard before the supervisor gives up and
    #: lets the crash surface (a restart-storm backstop).
    max_recoveries: int = 3
    #: Ship each worker's structured-log ring to the facade's merged
    #: :class:`~repro.observability.logging.FederationLogView` (process
    #: backend; serial shards share the facade's process log, which the
    #: facade drains directly under :data:`FACADE_SHARD`).
    ship_logs: bool = False
    #: Head-sampling period of the facade's trace assembler: one ship
    #: wave in this many is traced end to end across the shards it
    #: touches (1 = trace every wave).  Only meaningful with
    #: ``instrument`` on.
    trace_sample_every: int = DEFAULT_SAMPLE_EVERY
    #: Serialization of the worker pipes and the write-ahead journal:
    #: ``binary`` (the interned fast path of
    #: :mod:`repro.parallel.codec`) or ``json`` (the debug/compat
    #: path — ``strace`` a worker and read the traffic).  Serial shards
    #: never serialize; the knob only affects the process backend.
    wire_codec: str = "binary"
    #: Event frames allowed in flight (sent, not yet acked) per shard
    #: before ingest defers that shard's batches in the facade buffer.
    #: The window bounds facade- and pipe-side memory per shard while a
    #: worker stalls; acks ride the worker's response frames plus
    #: standalone ack frames every ``max_inflight // 2`` event frames.
    max_inflight: int = 32
    #: Overlap the collective operations (broadcast the request to all
    #: shards, then gather responses as they arrive).  ``False`` falls
    #: back to one shard at a time — full round trips in shard order —
    #: which is the comparison baseline QE15 measures against.
    overlap: bool = True

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ParallelError("a federation needs at least one shard")
        if self.backend not in BACKENDS:
            raise ParallelError(
                f"unknown shard backend {self.backend!r}; "
                f"expected one of {BACKENDS}"
            )
        if self.batch_size < 1:
            raise ParallelError("batch_size must be positive")
        if self.durable_dir is not None and self.backend != "process":
            raise ParallelError(
                "durable_dir requires the process backend (a serial "
                "shard dies with the facade; there is no worker to "
                "respawn)"
            )
        if self.fsync_every < 0:
            raise ParallelError("fsync_every must be >= 0 (0 = never)")
        if self.snapshot_every < 0:
            raise ParallelError("snapshot_every must be >= 0 (0 = never)")
        if self.max_recoveries < 0:
            raise ParallelError("max_recoveries must be >= 0")
        if self.trace_sample_every < 1:
            raise ParallelError("trace_sample_every must be >= 1")
        if self.wire_codec not in WIRE_CODECS:
            raise ParallelError(
                f"unknown wire codec {self.wire_codec!r}; "
                f"expected one of {WIRE_CODECS}"
            )
        if self.max_inflight < 1:
            raise ParallelError("max_inflight must be >= 1")


@dataclass(frozen=True)
class ShardNotification:
    """One merged notification with its provenance across the shard layer."""

    shard: int
    seq: int
    time: int
    participant_id: str
    schema_name: str
    description: str
    process_instance_id: Optional[str]
    #: Id-free delivery signature (present when shards run instrumented).
    signature: Optional[Tuple[Any, ...]]
    parameters: Dict[str, Any] = field(compare=False, default_factory=dict)

    @property
    def merge_key(self) -> Tuple[int, int, int]:
        return (self.time, self.shard, self.seq)


def _notification_from_record(
    shard: int, record: Dict[str, Any], raw: bool = False
) -> ShardNotification:
    """Build one merged notification from a shard's drain record.

    ``raw`` marks records off a binary channel: the signature is
    already nested tuples and the parameters are native values, so the
    JSON path's ``decode_value`` / ``as_tuples`` normalization is
    skipped entirely.
    """
    signature = record.get("signature")
    if raw:
        return ShardNotification(
            shard=shard,
            seq=record["seq"],
            time=record["time"],
            participant_id=record["participant"],
            schema_name=record["schema"],
            description=record["description"],
            process_instance_id=record.get("instance"),
            signature=signature,
            parameters=record.get("parameters") or {},
        )
    return ShardNotification(
        shard=shard,
        seq=record["seq"],
        time=record["time"],
        participant_id=record["participant"],
        schema_name=record["schema"],
        description=record["description"],
        process_instance_id=record.get("instance"),
        signature=as_tuples(decode_value(signature))
        if signature is not None
        else None,
        parameters=decode_value(record.get("parameters") or {}),
    )


class SerialShard:
    """An in-process shard: direct calls, no encoding, no IPC."""

    backend = "serial"
    #: Serial records use the JSON-path record shape (``encode_value``'d
    #: parameters), so the facade decodes them like a JSON channel's.
    wire_codec = "json"

    def __init__(self, shard_id: int, config: ShardConfig) -> None:
        self.shard_id = shard_id
        self.alive = True
        self.host = ShardHost(
            shard_id, config.shards, share_plans=config.share_plans
        )
        #: Receives this shard's observability payloads (set by the
        #: facade); serial shards harvest straight from the host on
        #: every read, mirroring the frames a worker would send.
        self.observability_sink: ObservabilitySink = None
        self._pending_flush: Optional[List[Dict[str, Any]]] = None
        self._pending_stats: Optional[Dict[str, int]] = None

    def bootstrap(self, blueprint: FederationBlueprint) -> None:
        self.host.apply_blueprint(blueprint)

    def send_events(
        self, events: List[Event], ctx: Optional[TraceContext] = None
    ) -> None:
        self.host.ingest(events, ctx)

    def deploy(self, spec: ShardSpec) -> None:
        self.host.deploy_spec(spec)

    def undeploy(self, spec_id: str) -> None:
        self.host.undeploy_spec(spec_id)

    def flush(self) -> List[Dict[str, Any]]:
        records = self.host.drain_results()
        self._harvest()
        return records

    def stats(self) -> Dict[str, int]:
        stats = self.host.stats()
        self._harvest()
        return stats

    # -- split-phase collectives (degenerate: serial shards answer
    # -- synchronously, so "begin" already computes the response) ----------

    def begin_flush(self) -> None:
        self._pending_flush = self.flush()

    def end_flush(
        self, frame: Optional[Dict[str, Any]] = None
    ) -> List[Dict[str, Any]]:
        records, self._pending_flush = self._pending_flush, None
        return records if records is not None else self.flush()

    def begin_stats(self) -> None:
        self._pending_stats = self.stats()

    def end_stats(
        self, frame: Optional[Dict[str, Any]] = None
    ) -> Tuple[Dict[str, int], List[str]]:
        stats, self._pending_stats = self._pending_stats, None
        return (stats if stats is not None else self.stats()), []

    def _harvest(self) -> None:
        """Feed the sink what a worker would piggyback on this exchange.

        Only the *system* registry ships: serial shards share the
        facade's process-wide default registry (stage histograms and
        durability counters), which the facade merges once under its own
        shard label instead of once per shard.  Logs likewise live in
        the shared process log, drained centrally by the facade.
        """
        sink = self.observability_sink
        if sink is None:
            return
        sink(
            {
                "registry": self.host.system.metrics.snapshot(),
                "spans": self.host.drain_spans(),
            }
        )

    def sync(self) -> None:
        """Nothing buffered, nothing remote: always consistent."""

    def close(self) -> None:
        if self.alive:
            self.alive = False
            self.host.close()


class ProcessShard:
    """A forked worker behind two pipes (events in, results out).

    The pipes live inside a :class:`~repro.parallel.mux.MuxChannel`
    owned by the federation's :class:`ChannelMultiplexer`: writes are
    queued and pumped non-blocking, reads are readiness-driven, and a
    fresh shard means fresh interning tables on both pipe directions —
    the respawn-resets-the-tables contract lives in the channel.
    """

    backend = "process"

    def __init__(
        self,
        shard_id: int,
        config: ShardConfig,
        process: Any,
        mux: ChannelMultiplexer,
        channel: MuxChannel,
    ) -> None:
        self.shard_id = shard_id
        self.config = config
        self.process = process
        self.mux = mux
        self.channel = channel
        self.alive = True
        #: The negotiated channel codec (the hello bytes already told
        #: the worker).
        self.wire_codec = config.wire_codec
        #: Sequence number of the next event frame; survives a respawn
        #: (the supervisor copies it onto the replacement shard) so
        #: journal-replayed frames keep their original numbers.
        self._next_seq = 0
        #: Receives the ``observability`` payloads the worker piggybacks
        #: on stats/results frames (set by the facade).
        self.observability_sink: ObservabilitySink = None

    # -- channel ----------------------------------------------------------

    def _crashed(self, reason: str) -> ShardCrashError:
        if self.alive:
            self.alive = False
            _SLOG.emit(
                "parallel",
                "worker_crashed",
                level="error",
                shard=self.shard_id,
                reason=reason,
                exit_code=self.process.exitcode,
            )
        return ShardCrashError(
            f"shard {self.shard_id} worker died ({reason}; "
            f"exit code {self.process.exitcode})"
        )

    def _send(self, frame: Dict[str, Any], credit: bool = False) -> None:
        """Queue *frame* on the channel (non-blocking).

        With ``credit`` the send first waits for in-flight window space
        — the per-frame backpressure point of barrier paths like
        :meth:`ShardedFederation.flush_buffers` and journal replay
        (streaming ingest checks :meth:`has_credit` instead and defers
        without waiting).
        """
        if not self.alive:
            raise ShardCrashError(
                f"shard {self.shard_id} worker is not running"
            )
        if credit and not self.mux.wait_for_credit(self.channel):
            raise self._crashed(self.channel.dead or "send failed")
        try:
            self.channel.queue(frame)
        except BrokenPipeError as error:
            raise self._crashed(str(error)) from None
        if self.channel.dead is not None:
            raise self._crashed(self.channel.dead)

    def _receive(self, expected: str) -> Dict[str, Any]:
        """Gather this shard's next response frame (blocking).

        Out-of-band ``error`` frames a dying worker emits while a
        gather is pending are dispatched at the channel layer — they
        mark the channel dead with the worker's reason attributed, and
        surface here as the :class:`ShardCrashError` they are, never as
        a protocol violation.
        """
        frames, crashed = self.mux.gather({self.shard_id: expected})
        if self.shard_id in crashed:
            raise self._crashed(crashed[self.shard_id])
        return frames[self.shard_id]

    def has_credit(self) -> bool:
        """Whether an event frame can ship without stalling."""
        return self.channel.has_credit()

    def make_events_frame(
        self, events: List[Event], ctx: Optional[TraceContext] = None
    ) -> Dict[str, Any]:
        """Build the sequenced events frame (consumes one sequence
        number); the supervisor journals exactly this frame."""
        frame = attach_trace(events_frame(events, self.wire_codec), ctx)
        frame[SEQ_KEY] = self._next_seq
        self._next_seq += 1
        return frame

    # -- shard surface ----------------------------------------------------

    def send_events(
        self, events: List[Event], ctx: Optional[TraceContext] = None
    ) -> None:
        self._send(self.make_events_frame(events, ctx), credit=True)

    def deploy(self, spec: ShardSpec) -> None:
        self._send({"kind": "deploy", "spec": spec.to_wire()})

    def undeploy(self, spec_id: str) -> None:
        self._send({"kind": "undeploy", "spec_id": spec_id})

    # -- split-phase collectives ------------------------------------------

    def begin_flush(self) -> None:
        self._send({"kind": "flush"})

    def end_flush(
        self, frame: Optional[Dict[str, Any]] = None
    ) -> List[Dict[str, Any]]:
        if frame is None:
            frame = self._receive("results")
        self._harvest(frame)
        return frame["notifications"]

    def begin_stats(self) -> None:
        self._send({"kind": "stats"})

    def end_stats(
        self, frame: Optional[Dict[str, Any]] = None
    ) -> Tuple[Dict[str, int], List[str]]:
        if frame is None:
            frame = self._receive("stats")
        self._harvest(frame)
        return frame["stats"], list(frame.get("errors", ()))

    def flush(self) -> List[Dict[str, Any]]:
        self.begin_flush()
        return self.end_flush()

    def _harvest(self, frame: Dict[str, Any]) -> None:
        sink = self.observability_sink
        payload = frame.get("observability")
        if sink is not None and payload:
            sink(payload)

    def stats(self) -> Dict[str, int]:
        stats, errors = self._stats_round_trip()
        if errors:
            raise ParallelError(
                f"shard {self.shard_id} reported errors: {errors}"
            )
        return stats

    def sync(self) -> None:
        """Round-trip the channel; surfaces deferred worker errors."""
        __, errors = self._stats_round_trip()
        if errors:
            raise ParallelError(
                f"shard {self.shard_id} reported errors: {errors}"
            )

    def _stats_round_trip(self) -> Tuple[Dict[str, int], List[str]]:
        self.begin_stats()
        return self.end_stats()

    def close(self) -> None:
        if not self.alive:
            self.discard()
            return
        try:
            self._send({"kind": "shutdown"})
            self._receive("bye")
        except (ShardCrashError, ParallelError):
            pass  # already down is an acceptable way to shut down
        self.alive = False
        self.discard()

    def discard(self) -> None:
        """Tear the channel down and reap the worker (no handshake)."""
        self.alive = False
        self.mux.unregister(self.channel)
        self.channel.close_fds()
        self._reap()

    def _reap(self) -> None:
        process = self.process
        process.join(self.config.join_timeout)
        if process.is_alive():  # pragma: no cover - timing-dependent
            _SLOG.emit(
                "parallel",
                "worker_killed",
                level="error",
                shard=self.shard_id,
                reason=f"join timeout ({self.config.join_timeout}s)",
            )
            process.terminate()
            process.join(self.config.join_timeout)


def _spawn_worker(
    shard_id: int,
    config: ShardConfig,
    blueprint_wire: Dict[str, Any],
    close_fds: List[int],
    mux: ChannelMultiplexer,
) -> ProcessShard:
    """Fork one worker booted from *blueprint_wire*.

    ``close_fds`` lists every parent-side fd the child must drop —
    sibling pipes (so a crashed sibling's channel is not held half-open)
    and, under durability, the journal fds.  The new shard's own
    parent-side ends are added automatically.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        raise ParallelError(
            "the process backend requires the fork start method "
            "(POSIX only); use the serial backend here"
        )
    context = multiprocessing.get_context("fork")
    options = {
        "instrument": config.instrument,
        "share_plans": config.share_plans,
        "ship_logs": config.ship_logs,
        # A worker volunteers a standalone ack once this many event
        # frames arrive without a response to piggyback the ack on.
        "ack_every": max(1, config.max_inflight // 2),
    }
    from .worker import worker_main

    in_read, in_write = os.pipe()
    out_read, out_write = os.pipe()
    process = context.Process(
        target=worker_main,
        args=(
            shard_id,
            config.shards,
            in_read,
            out_write,
            list(close_fds) + [in_write, out_read],
            options,
            blueprint_wire,
        ),
        daemon=True,
        name=f"repro-shard-{shard_id}",
    )
    process.start()
    os.close(in_read)
    os.close(out_write)
    # Codec negotiation: the hello bytes are the first thing on the
    # event pipe, before any frame — the worker configures both channel
    # directions (and its host's raw/wire record shape) from them.
    # Written before the channel flips the fd non-blocking: five bytes
    # always fit a fresh pipe.
    os.write(in_write, hello_bytes(config.wire_codec))
    channel = MuxChannel(
        shard_id, in_write, out_read, config.wire_codec, config.max_inflight
    )
    mux.register(channel)
    return ProcessShard(shard_id, config, process, mux, channel)


def _start_process_shards(
    config: ShardConfig,
    blueprint: FederationBlueprint,
    mux: ChannelMultiplexer,
) -> List[ProcessShard]:
    blueprint_wire = blueprint.to_wire()
    shards: List[ProcessShard] = []
    parent_fds: List[int] = []
    for shard_id in range(config.shards):
        shard = _spawn_worker(
            shard_id, config, blueprint_wire, parent_fds, mux
        )
        # Every parent-side fd opened so far must be closed inside the
        # children forked later (see worker_main).
        parent_fds.extend((shard.channel.in_fd, shard.channel.out_fd))
        shards.append(shard)
    return shards


class ShardedFederation:
    """N shards behind the single-system API."""

    def __init__(
        self,
        blueprint: FederationBlueprint,
        config: Optional[ShardConfig] = None,
        router: Optional[ShardRouter] = None,
    ) -> None:
        self.config = config if config is not None else ShardConfig()
        self.router = router if router is not None else ShardRouter()
        self.blueprint = blueprint
        self._closed = False
        self._restore_instrumentation: Optional[bool] = None
        self._restore_logging: Optional[bool] = None
        #: Federation-wide observability plane, fed by the shards'
        #: piggybacked payloads on every stats/flush exchange.
        self.trace_assembler = TraceAssembler(
            sample_every=self.config.trace_sample_every
        )
        self.metrics_view = FederationMetricsView()
        self.log_view = FederationLogView()
        self.spans_dropped = 0
        #: Start the facade's own drain cursor at the process log's
        #: current position: records emitted before this federation
        #: existed are history, not federation traffic.
        self._local_log_cursor = _SLOG.seq
        self._mux: Optional[ChannelMultiplexer] = None
        self._stalls: Optional[Counter] = None
        self._gather_latency: Optional[Histogram] = None
        if self.config.backend == "process":
            self._mux = ChannelMultiplexer()
            registry = default_registry()
            self._stalls = registry.counter(
                "backpressure_stalls_total",
                "Event sends deferred or blocked on a shard's in-flight "
                "credit window",
                label_names=("shard",),
            )
            self._gather_latency = registry.histogram(
                "gather_latency_us",
                GATHER_LATENCY_BUCKETS,
                "Latency of broadcast-then-gather collectives",
                label_names=("op",),
            )
            facade_pid = os.getpid()

            def _inflight() -> Dict[Tuple[str, ...], float]:
                # Workers inherit this registry (and this callback)
                # across fork; only the facade process owns channels.
                if os.getpid() != facade_pid:
                    return {}
                return inflight_snapshot(self._live_channels())

            registry.multi_callback_gauge(
                "shard_inflight",
                _inflight,
                "Event frames in flight (sent, unacked) per shard",
                label_names=("shard",),
            )
            self._mux.on_stall = lambda channel: self._count_stall(
                channel.shard_id
            )
            workers = _start_process_shards(
                self.config, blueprint, self._mux
            )
            if self.config.durable_dir is not None:
                from ..durability.supervisor import SupervisedShard

                self.shards: List[Any] = [
                    SupervisedShard(
                        worker,
                        self.config,
                        blueprint,
                        self._respawn_worker,
                    )
                    for worker in workers
                ]
            else:
                self.shards = list(workers)
        else:
            if self.config.instrument and not _OBS.enabled:
                # Workers own their instrumentation plane; serial shards
                # share this process's, so flip it here and restore on
                # close.
                self._restore_instrumentation = _OBS.enabled
                _OBS.reset()
                _OBS.enable()
            if self.config.ship_logs and not _SLOG.enabled:
                # Same deal for the structured log: serial shards record
                # into this process's ring, drained by logs().
                self._restore_logging = _SLOG.enabled
                _SLOG.enabled = True
            self.shards = [
                SerialShard(shard_id, self.config)
                for shard_id in range(self.config.shards)
            ]
            for shard in self.shards:
                shard.bootstrap(blueprint)
        for shard in self.shards:
            shard.observability_sink = (
                lambda payload, sid=shard.shard_id: self._on_observability(
                    sid, payload
                )
            )
        self._buffers: List[List[Event]] = [
            [] for __ in range(self.config.shards)
        ]
        #: Per-shard flag: the shard's buffer holds at least one full
        #: batch the credit window would not admit.  Used to count one
        #: stall per deferral episode instead of one per event.
        self._deferred: List[bool] = [False] * self.config.shards
        #: Everything drained so far, in merged order.
        self.delivered: List[ShardNotification] = []

    # -- backpressure plumbing ----------------------------------------------

    def _live_channels(self) -> List[MuxChannel]:
        channels: List[MuxChannel] = []
        for shard in getattr(self, "shards", ()):
            channel = getattr(shard, "channel", None)
            if channel is not None and shard.alive:
                channels.append(channel)
        return channels

    def _count_stall(self, shard_id: int) -> None:
        if self._stalls is not None:
            self._stalls.inc(labels=(str(shard_id),))

    # -- recovery plumbing --------------------------------------------------

    def _parent_fds(self) -> List[int]:
        """Every parent-side fd a freshly forked worker must close:
        the live siblings' pipe ends and the shards' journal fds."""
        fds: List[int] = []
        for shard in self.shards:
            inner = getattr(shard, "inner", shard)
            if getattr(inner, "alive", False) and inner.backend == "process":
                fds.extend((inner.channel.in_fd, inner.channel.out_fd))
            journal = getattr(shard, "journal", None)
            if journal is not None:
                try:
                    fds.append(journal.fileno())
                except (OSError, ValueError):  # pragma: no cover
                    pass
        return fds

    def _respawn_worker(
        self, shard_id: int, blueprint_wire: Dict[str, Any]
    ) -> ProcessShard:
        """Fork a replacement worker (the supervisor's respawn hook)."""
        assert self._mux is not None
        return _spawn_worker(
            shard_id,
            self.config,
            blueprint_wire,
            self._parent_fds(),
            self._mux,
        )

    # -- events ------------------------------------------------------------

    def ingest(self, events: List[Event]) -> None:
        """Route events to their shards; ships full batches eagerly.

        Under instrumentation, every batch shipped from one ``ingest``
        call shares a single :class:`TraceContext` — one logical *wave*.
        A wave the assembler samples is recorded end to end: each shard
        the wave reaches opens a ``shard.ingest`` root span under the
        wave's context, and the shipped trees reassemble into one trace
        spanning every shard the wave touched.  Events left buffered
        here ship later under that wave's context (see
        :meth:`flush_buffers`).

        Ingest never blocks on a slow shard: a full batch whose shard
        has exhausted its in-flight credit window stays in the facade
        buffer (bounded memory — event references, not copies) and
        ships once the shard acks; meanwhile every other shard's
        batches keep flowing.
        """
        router = self.router
        shard_count = self.config.shards
        batch_size = self.config.batch_size
        buffers = self._buffers
        ctx: Optional[TraceContext] = None
        for event in events:
            index = router.shard_for(event, shard_count)
            buffer = buffers[index]
            buffer.append(event)
            if len(buffer) < batch_size:
                continue
            if not self._can_ship(index):
                # Window full: defer this shard's batch, count the
                # stall once per episode, give pending acks a poll,
                # and keep the wave moving.
                if not self._deferred[index]:
                    self._deferred[index] = True
                    self.shards[index].channel.stalls += 1
                    self._count_stall(index)
                if self._mux is not None:
                    self._mux.pump(0.0)
                if not self._can_ship(index):
                    continue
            if ctx is None and self.config.instrument:
                ctx = self.trace_assembler.begin("federation.ingest")
            self._ship(index, ctx)

    def _can_ship(self, index: int) -> bool:
        """Whether shard *index* accepts an event frame right now.

        A dead channel reports ``True`` so the send attempt surfaces
        the crash (or triggers supervised recovery) instead of
        deferring forever.
        """
        shard = self.shards[index]
        channel = getattr(shard, "channel", None)
        if channel is None or channel.dead is not None:
            return True
        return bool(channel.has_credit())

    def _ship(self, index: int, ctx: Optional[TraceContext]) -> None:
        """Ship as many full batches of shard *index* as credit allows."""
        buffer = self._buffers[index]
        shard = self.shards[index]
        batch_size = self.config.batch_size
        start = 0
        while len(buffer) - start >= batch_size and self._can_ship(index):
            shard.send_events(buffer[start:start + batch_size], ctx)
            start += batch_size
        if start:
            self._buffers[index] = buffer = buffer[start:]
        self._deferred[index] = len(buffer) >= batch_size

    def flush_buffers(self) -> None:
        """Ship every partial batch (events keep per-shard order).

        This is a barrier: deferred batches ship too, each send waiting
        for its shard's credit window (the multiplexer keeps pumping
        every channel during the wait, so the acks that free the window
        can arrive).
        """
        if not any(self._buffers):
            return
        ctx: Optional[TraceContext] = None
        if self.config.instrument:
            ctx = self.trace_assembler.begin("federation.flush")
        batch_size = self.config.batch_size
        for index, buffer in enumerate(self._buffers):
            if not buffer:
                continue
            shard = self.shards[index]
            # Deferred batches may have stacked past one batch_size;
            # ship them as separate frames so the credit window keeps
            # counting what it meters (frames in flight).
            for start in range(0, len(buffer), batch_size):
                shard.send_events(buffer[start:start + batch_size], ctx)
            self._buffers[index] = []
            self._deferred[index] = False

    # -- specification lifecycle ------------------------------------------

    def deploy(self, spec: ShardSpec) -> None:
        """Fan a specification out to every shard (plan sharing stays
        per-shard: each pipeline interns its own copy)."""
        self.flush_buffers()
        for shard in self.shards:
            shard.deploy(spec)
        self._sync()
        self.blueprint.specifications.append(spec)

    def undeploy(self, spec_id: str) -> None:
        self.flush_buffers()
        for shard in self.shards:
            shard.undeploy(spec_id)
        self._sync()
        self.blueprint.specifications = [
            spec
            for spec in self.blueprint.specifications
            if spec.spec_id != spec_id
        ]

    # -- collectives --------------------------------------------------------

    def _collect(
        self, op: str, tolerant: bool = False
    ) -> List[Tuple[Any, Any]]:
        """One broadcast-then-gather collective across the federation.

        Broadcasts the *op* request (``"flush"`` or ``"stats"``) to
        every shard first, then gathers the responses as they arrive —
        the collective costs the slowest shard, not the sum.  Returns
        ``[(shard, result), ...]`` in shard order: records lists for
        ``flush``, ``(stats, errors)`` pairs for ``stats``.

        The wave always completes: every broadcast request is matched
        to its response (or its shard's crash) before anything is
        raised, so no stale frame is left behind to poison the next
        collective.  Supervised shards recover-and-retry internally;
        a plain shard's crash raises after the wave, with the shard
        attributed.  With ``tolerant``, dead shards are skipped and
        crashes drop the shard from the result instead of raising.

        With ``ShardConfig.overlap`` off (or on the serial backend) the
        same code degenerates to one blocking round trip per shard in
        shard order — the pre-overlap behavior, kept as the QE15
        comparison baseline.
        """
        shards = [s for s in self.shards if not tolerant or s.alive]
        begun: List[Any] = []
        failures: List[ShardCrashError] = []
        for shard in shards:
            try:
                if op == "flush":
                    shard.begin_flush()
                else:
                    shard.begin_stats()
                begun.append(shard)
            except ShardCrashError as error:
                if not tolerant:
                    failures.append(error)
        frames: Dict[int, Dict[str, Any]] = {}
        if self._mux is not None and self.config.overlap:
            wants = {
                shard.shard_id: _COLLECTIVE_RESPONSE[op]
                for shard in begun
                if getattr(shard, "channel", None) is not None
            }
            if wants:
                started = perf_counter()
                frames, __ = self._mux.gather(wants)
                if self._gather_latency is not None:
                    self._gather_latency.observe(
                        (perf_counter() - started) * 1e6, labels=(op,)
                    )
        results: List[Tuple[Any, Any]] = []
        for shard in begun:
            frame = frames.get(shard.shard_id)
            try:
                if op == "flush":
                    results.append((shard, shard.end_flush(frame)))
                else:
                    results.append((shard, shard.end_stats(frame)))
            except ShardCrashError as error:
                if not tolerant:
                    failures.append(error)
        if failures:
            raise failures[0]
        return results

    def _sync(self) -> None:
        # Round-trip every shard even when an early one reports errors:
        # stopping at the first failure would leave later shards'
        # deferred errors undrained, poisoning the *next* operation.
        problems: List[str] = []
        for shard, (__, errors) in self._collect("stats"):
            if errors:
                problems.append(
                    f"shard {shard.shard_id} reported errors: {errors}"
                )
        if problems:
            raise ParallelError("; ".join(problems))

    # -- results -----------------------------------------------------------

    def drain(self) -> List[ShardNotification]:
        """Collect and deterministically merge new notifications.

        The flush fans out to every shard before the first response is
        awaited, so the drain costs the slowest shard's flush.  The
        merge key is ``(logical time, shard id, sequence)``: a total
        order independent of worker scheduling — and of gather arrival
        order.  Per-shard sequence numbers increase with enqueue order,
        so notifications of one process instance (always co-sharded)
        keep their recognition order in the merged stream.
        """
        self.flush_buffers()
        merged: List[ShardNotification] = []
        for shard, records in self._collect("flush"):
            raw = shard.wire_codec == "binary"
            merged.extend(
                _notification_from_record(shard.shard_id, record, raw)
                for record in records
            )
        merged.sort(key=lambda n: n.merge_key)
        self.delivered.extend(merged)
        return merged

    # -- observability ------------------------------------------------------

    def _on_observability(self, shard_id: int, payload: Dict[str, Any]) -> None:
        """Route one shard's piggybacked shipment into the facade views."""
        registry = payload.get("registry")
        if registry:
            self.metrics_view.update(shard_id, registry)
        spans = payload.get("spans")
        if spans:
            for batch in spans.get("batches", ()):
                self.trace_assembler.add_batch(batch)
            self.spans_dropped += int(spans.get("dropped", 0))
        logs = payload.get("logs")
        if logs:
            self.log_view.extend(
                shard_id,
                logs.get("records", ()),
                int(logs.get("dropped", 0)),
            )

    def refresh_observability(self) -> None:
        """Round-trip every live shard so the federation views are
        current (each read piggybacks the shard's latest shipment) —
        one overlapped wave, not a per-shard loop."""
        self._collect("stats", tolerant=True)

    def traces(self) -> Tuple[Dict[str, Any], ...]:
        """Assembled cross-shard traces, oldest first."""
        return self.trace_assembler.traces()

    def logs(self) -> FederationLogView:
        """The merged federation log, facade-process records included.

        Worker records arrive through the piggybacked shipments (call
        :meth:`refresh_observability` or any stats/drain first); the
        facade's own process log — which serial shards share — is
        drained here under :data:`FACADE_SHARD`.
        """
        records, dropped, cursor = _SLOG.drain(self._local_log_cursor)
        self._local_log_cursor = cursor
        self.log_view.extend(FACADE_SHARD, records, dropped)
        return self.log_view

    def metrics_registry(self) -> MetricsRegistry:
        """The merged federation registry: every shard's snapshot under
        its ``shard`` label, plus this process's default registry (stage
        histograms of serial shards, journal/supervisor counters) under
        the ``facade`` label."""
        merged = self.metrics_view.registry()
        merged.merge(default_registry().snapshot(), shard="facade")
        return merged

    def render_metrics(self) -> str:
        """Prometheus text exposition across the whole federation."""
        return self.metrics_registry().render_text()

    def health(
        self, rules: Optional[Tuple[SloRule, ...]] = None
    ) -> SystemHealth:
        """Threshold SLO rules evaluated over the merged federation
        registry — a breach inside any one worker surfaces here."""
        self.refresh_observability()
        return self.metrics_view.health(rules)

    def shard_stats(self) -> List[Dict[str, Any]]:
        """Per-shard rows for ``repro shards`` and the dashboard."""
        stats_by_id: Dict[int, Dict[str, Any]] = {}
        for shard, (stats, errors) in self._collect("stats", tolerant=True):
            if errors:
                raise ParallelError(
                    f"shard {shard.shard_id} reported errors: {errors}"
                )
            stats_by_id[shard.shard_id] = dict(stats)
        rows: List[Dict[str, Any]] = []
        for shard in self.shards:
            row: Dict[str, Any] = {
                "shard": shard.shard_id,
                "backend": shard.backend,
                "alive": shard.alive,
                "buffered": len(self._buffers[shard.shard_id]),
            }
            # Credit-window columns (after the collect: its piggybacked
            # acks retire credits, so these read the settled window).
            channel = getattr(shard, "channel", None)
            if channel is not None:
                row["inflight"] = channel.outstanding
                row["credits"] = max(
                    0, channel.max_inflight - channel.outstanding
                )
                row["stalls"] = channel.stalls
            row.update(stats_by_id.get(shard.shard_id, {}))
            rows.append(row)
        return rows

    def stats(self) -> Dict[str, Any]:
        """The federation aggregate: counter sums across live shards.

        Numeric stats sum; anything a shard reports that cannot be
        summed (strings, flags, structures) is namespaced per shard as
        ``shard<N>/<key>`` instead of being silently dropped — a worker
        surfacing a non-counter datum deserves to be seen.
        """
        totals: Dict[str, Any] = {}
        alive = 0
        for row in self.shard_stats():
            if row["alive"]:
                alive += 1
            for key, value in row.items():
                if key in ("shard", "backend", "alive"):
                    continue
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    totals[f"shard{row['shard']}/{key}"] = value
                else:
                    totals[key] = totals.get(key, 0) + value
        totals["shards"] = self.config.shards
        totals["shards_alive"] = alive
        totals["notifications_merged"] = len(self.delivered)
        return totals

    def healthy(self) -> bool:
        return all(shard.alive for shard in self.shards)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            try:
                shard.close()
            except ShardCrashError:  # pragma: no cover - already logged
                pass
        if self._mux is not None:
            self._mux.close()
        if self._restore_instrumentation is not None:
            _OBS.enabled = self._restore_instrumentation
        if self._restore_logging is not None:
            _SLOG.enabled = self._restore_logging

    def __enter__(self) -> "ShardedFederation":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
