"""Sharded multi-core enactment: the single-system facade.

:class:`ShardedFederation` partitions one federation's event work across
N shards while keeping the single-system API: events go in
(:meth:`ShardedFederation.ingest`), specifications deploy and undeploy
federation-wide, notifications come back as one deterministically merged
stream, and ``stats()`` aggregates so the observability surfaces
(``repro shards``, ``repro top``, health views) read one federation.

Two backends, selected by :class:`ShardConfig`:

* ``serial`` (default) — every shard is an in-process
  :class:`~repro.parallel.host.ShardHost`; zero IPC, zero encoding.
  Tier-1 tests and the differential suites run here: the routing, the
  merge, and the facade logic are identical to the process backend, so
  correctness is cheap to check.
* ``process`` — each shard is a forked OS worker running
  :func:`~repro.parallel.worker.worker_main`; events cross a
  length-prefixed wire in routed batches, and recognition runs on as
  many cores as there are shards.

**Deterministic merge.**  Each shard reports its notifications with a
per-shard sequence number (enqueue order).  The facade sorts the union
by ``(logical time, shard id, sequence)`` — a total order that depends
only on the event streams, never on worker scheduling.  Because every
affinity key lives on exactly one shard, a process instance's
notifications share a shard and their sequence numbers preserve
recognition order: the merged stream is a deterministic reordering of
the serial stream with per-instance order intact (QE11 asserts this).

**Crash containment.**  A dead worker surfaces as a structured log entry
plus :class:`~repro.errors.ShardCrashError` on the next interaction —
never a hang: reads fail fast on EOF, and shutdown uses a poison pill
with a join timeout before escalating to ``terminate()``.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple

from ..errors import ParallelError, ShardCrashError
from ..events.event import Event
from ..observability import INSTRUMENTATION as _OBS
from ..observability import STRUCTURED_LOG as _SLOG
from ..observability.health import SloRule, SystemHealth
from ..observability.logging import FederationLogView
from ..observability.registry import MetricsRegistry, default_registry
from ..observability.selfawareness import FederationMetricsView
from ..observability.trace import (
    DEFAULT_SAMPLE_EVERY,
    TraceAssembler,
    TraceContext,
)
from .codec import (
    WIRE_CODECS,
    events_frame,
    make_reader,
    make_writer,
    write_hello,
)
from .host import FederationBlueprint, ShardHost, ShardSpec
from .router import ShardRouter
from .wire import (
    as_tuples,
    attach_trace,
    decode_value,
)

BACKENDS = ("serial", "process")

#: Shard id under which the facade process's own structured-log records
#: appear in the merged federation view (serial shards share the facade
#: process, so their records land here too).
FACADE_SHARD = -1

#: An observability shipment handler: receives the ``observability``
#: payload a shard piggybacked on a stats/flush exchange.
ObservabilitySink = Optional[Any]


@dataclass(frozen=True)
class ShardConfig:
    """Knobs of the sharded execution layer."""

    shards: int = 1
    backend: str = "serial"
    #: Events buffered per shard before a routed batch is sent.
    batch_size: int = 128
    #: Enable tracing/provenance inside each shard's pipeline (workers
    #: flip their own process-global instrumentation plane).
    instrument: bool = False
    share_plans: bool = True
    #: Seconds to wait for a worker to honor the poison pill before it
    #: is terminated.
    join_timeout: float = 5.0
    #: Root directory for per-shard journals and snapshots.  Setting it
    #: (process backend only) wraps every shard in a
    #: :class:`~repro.durability.supervisor.SupervisedShard`: mutations
    #: are journaled before dispatch and a crashed worker is respawned
    #: from its latest snapshot plus journal-tail replay.
    durable_dir: Optional[str] = None
    #: fsync the journal once per this many appends (0 = rely on the OS;
    #: a facade-process crash then still loses nothing, only a machine
    #: crash can).
    fsync_every: int = 16
    #: Take a shard snapshot (and compact its journal) every this many
    #: journaled frames; 0 disables snapshots — recovery replays the
    #: whole journal.
    snapshot_every: int = 256
    #: Recoveries allowed per shard before the supervisor gives up and
    #: lets the crash surface (a restart-storm backstop).
    max_recoveries: int = 3
    #: Ship each worker's structured-log ring to the facade's merged
    #: :class:`~repro.observability.logging.FederationLogView` (process
    #: backend; serial shards share the facade's process log, which the
    #: facade drains directly under :data:`FACADE_SHARD`).
    ship_logs: bool = False
    #: Head-sampling period of the facade's trace assembler: one ship
    #: wave in this many is traced end to end across the shards it
    #: touches (1 = trace every wave).  Only meaningful with
    #: ``instrument`` on.
    trace_sample_every: int = DEFAULT_SAMPLE_EVERY
    #: Serialization of the worker pipes and the write-ahead journal:
    #: ``binary`` (the interned fast path of
    #: :mod:`repro.parallel.codec`) or ``json`` (the debug/compat
    #: path — ``strace`` a worker and read the traffic).  Serial shards
    #: never serialize; the knob only affects the process backend.
    wire_codec: str = "binary"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ParallelError("a federation needs at least one shard")
        if self.backend not in BACKENDS:
            raise ParallelError(
                f"unknown shard backend {self.backend!r}; "
                f"expected one of {BACKENDS}"
            )
        if self.batch_size < 1:
            raise ParallelError("batch_size must be positive")
        if self.durable_dir is not None and self.backend != "process":
            raise ParallelError(
                "durable_dir requires the process backend (a serial "
                "shard dies with the facade; there is no worker to "
                "respawn)"
            )
        if self.fsync_every < 0:
            raise ParallelError("fsync_every must be >= 0 (0 = never)")
        if self.snapshot_every < 0:
            raise ParallelError("snapshot_every must be >= 0 (0 = never)")
        if self.max_recoveries < 0:
            raise ParallelError("max_recoveries must be >= 0")
        if self.trace_sample_every < 1:
            raise ParallelError("trace_sample_every must be >= 1")
        if self.wire_codec not in WIRE_CODECS:
            raise ParallelError(
                f"unknown wire codec {self.wire_codec!r}; "
                f"expected one of {WIRE_CODECS}"
            )


@dataclass(frozen=True)
class ShardNotification:
    """One merged notification with its provenance across the shard layer."""

    shard: int
    seq: int
    time: int
    participant_id: str
    schema_name: str
    description: str
    process_instance_id: Optional[str]
    #: Id-free delivery signature (present when shards run instrumented).
    signature: Optional[Tuple[Any, ...]]
    parameters: Dict[str, Any] = field(compare=False, default_factory=dict)

    @property
    def merge_key(self) -> Tuple[int, int, int]:
        return (self.time, self.shard, self.seq)


def _notification_from_record(
    shard: int, record: Dict[str, Any], raw: bool = False
) -> ShardNotification:
    """Build one merged notification from a shard's drain record.

    ``raw`` marks records off a binary channel: the signature is
    already nested tuples and the parameters are native values, so the
    JSON path's ``decode_value`` / ``as_tuples`` normalization is
    skipped entirely.
    """
    signature = record.get("signature")
    if raw:
        return ShardNotification(
            shard=shard,
            seq=record["seq"],
            time=record["time"],
            participant_id=record["participant"],
            schema_name=record["schema"],
            description=record["description"],
            process_instance_id=record.get("instance"),
            signature=signature,
            parameters=record.get("parameters") or {},
        )
    return ShardNotification(
        shard=shard,
        seq=record["seq"],
        time=record["time"],
        participant_id=record["participant"],
        schema_name=record["schema"],
        description=record["description"],
        process_instance_id=record.get("instance"),
        signature=as_tuples(decode_value(signature))
        if signature is not None
        else None,
        parameters=decode_value(record.get("parameters") or {}),
    )


class SerialShard:
    """An in-process shard: direct calls, no encoding, no IPC."""

    backend = "serial"
    #: Serial records use the JSON-path record shape (``encode_value``'d
    #: parameters), so the facade decodes them like a JSON channel's.
    wire_codec = "json"

    def __init__(self, shard_id: int, config: ShardConfig) -> None:
        self.shard_id = shard_id
        self.alive = True
        self.host = ShardHost(
            shard_id, config.shards, share_plans=config.share_plans
        )
        #: Receives this shard's observability payloads (set by the
        #: facade); serial shards harvest straight from the host on
        #: every read, mirroring the frames a worker would send.
        self.observability_sink: ObservabilitySink = None

    def bootstrap(self, blueprint: FederationBlueprint) -> None:
        self.host.apply_blueprint(blueprint)

    def send_events(
        self, events: List[Event], ctx: Optional[TraceContext] = None
    ) -> None:
        self.host.ingest(events, ctx)

    def deploy(self, spec: ShardSpec) -> None:
        self.host.deploy_spec(spec)

    def undeploy(self, spec_id: str) -> None:
        self.host.undeploy_spec(spec_id)

    def flush(self) -> List[Dict[str, Any]]:
        records = self.host.drain_results()
        self._harvest()
        return records

    def stats(self) -> Dict[str, int]:
        stats = self.host.stats()
        self._harvest()
        return stats

    def _harvest(self) -> None:
        """Feed the sink what a worker would piggyback on this exchange.

        Only the *system* registry ships: serial shards share the
        facade's process-wide default registry (stage histograms and
        durability counters), which the facade merges once under its own
        shard label instead of once per shard.  Logs likewise live in
        the shared process log, drained centrally by the facade.
        """
        sink = self.observability_sink
        if sink is None:
            return
        sink(
            {
                "registry": self.host.system.metrics.snapshot(),
                "spans": self.host.drain_spans(),
            }
        )

    def sync(self) -> None:
        """Nothing buffered, nothing remote: always consistent."""

    def close(self) -> None:
        if self.alive:
            self.alive = False
            self.host.close()


class ProcessShard:
    """A forked worker behind two pipes (events in, results out)."""

    backend = "process"

    def __init__(
        self,
        shard_id: int,
        config: ShardConfig,
        process: Any,
        in_stream: IO[bytes],
        out_stream: IO[bytes],
    ) -> None:
        self.shard_id = shard_id
        self.config = config
        self.process = process
        self._in = in_stream
        self._out = out_stream
        self.alive = True
        #: The negotiated channel codec (the hello frame already told
        #: the worker).  A fresh ``ProcessShard`` means fresh
        #: writer/reader interning tables on both pipe directions — the
        #: respawn-resets-the-tables contract lives here.
        self.wire_codec = config.wire_codec
        self._writer = make_writer(in_stream, config.wire_codec)
        self._reader = make_reader(out_stream, config.wire_codec)
        #: Receives the ``observability`` payloads the worker piggybacks
        #: on stats/results frames (set by the facade).
        self.observability_sink: ObservabilitySink = None

    # -- channel ----------------------------------------------------------

    def _crashed(self, reason: str) -> ShardCrashError:
        self.alive = False
        exit_code = self.process.exitcode
        _SLOG.emit(
            "parallel",
            "worker_crashed",
            level="error",
            shard=self.shard_id,
            reason=reason,
            exit_code=exit_code,
        )
        return ShardCrashError(
            f"shard {self.shard_id} worker died ({reason}; "
            f"exit code {exit_code})"
        )

    def _send(self, frame: Dict[str, Any]) -> None:
        if not self.alive:
            raise ShardCrashError(
                f"shard {self.shard_id} worker is not running"
            )
        try:
            self._writer.write(frame)
        except (BrokenPipeError, OSError) as error:
            raise self._crashed(f"send failed: {error}") from None

    def _receive(self, expected: str) -> Dict[str, Any]:
        try:
            frame = self._reader.read()
        except Exception as error:
            raise self._crashed(f"receive failed: {error}") from None
        if frame is None:
            raise self._crashed("channel closed")
        kind = frame.get("kind")
        if kind == "error":
            raise self._crashed(f"worker error: {frame.get('error')}")
        if kind != expected:
            raise self._crashed(
                f"protocol violation: expected {expected!r} frame, "
                f"got {kind!r}"
            )
        return frame

    # -- shard surface ----------------------------------------------------

    def send_events(
        self, events: List[Event], ctx: Optional[TraceContext] = None
    ) -> None:
        self._send(attach_trace(events_frame(events, self.wire_codec), ctx))

    def deploy(self, spec: ShardSpec) -> None:
        self._send({"kind": "deploy", "spec": spec.to_wire()})

    def undeploy(self, spec_id: str) -> None:
        self._send({"kind": "undeploy", "spec_id": spec_id})

    def flush(self) -> List[Dict[str, Any]]:
        self._send({"kind": "flush"})
        frame = self._receive("results")
        self._harvest(frame)
        return frame["notifications"]

    def _harvest(self, frame: Dict[str, Any]) -> None:
        sink = self.observability_sink
        payload = frame.get("observability")
        if sink is not None and payload:
            sink(payload)

    def stats(self) -> Dict[str, int]:
        stats, errors = self._stats_round_trip()
        if errors:
            raise ParallelError(
                f"shard {self.shard_id} reported errors: {errors}"
            )
        return stats

    def sync(self) -> None:
        """Round-trip the channel; surfaces deferred worker errors."""
        __, errors = self._stats_round_trip()
        if errors:
            raise ParallelError(
                f"shard {self.shard_id} reported errors: {errors}"
            )

    def _stats_round_trip(self) -> Tuple[Dict[str, int], List[str]]:
        self._send({"kind": "stats"})
        frame = self._receive("stats")
        self._harvest(frame)
        return frame["stats"], list(frame.get("errors", ()))

    def close(self) -> None:
        if not self.alive:
            self._reap()
            return
        try:
            self._send({"kind": "shutdown"})
            self._receive("bye")
        except (ShardCrashError, ParallelError):
            pass  # already down is an acceptable way to shut down
        self.alive = False
        self._reap()
        for stream in (self._in, self._out):
            try:
                stream.close()
            except OSError:  # pragma: no cover
                pass

    def _reap(self) -> None:
        process = self.process
        process.join(self.config.join_timeout)
        if process.is_alive():  # pragma: no cover - timing-dependent
            _SLOG.emit(
                "parallel",
                "worker_killed",
                level="error",
                shard=self.shard_id,
                reason=f"join timeout ({self.config.join_timeout}s)",
            )
            process.terminate()
            process.join(self.config.join_timeout)


def _spawn_worker(
    shard_id: int,
    config: ShardConfig,
    blueprint_wire: Dict[str, Any],
    close_fds: List[int],
) -> ProcessShard:
    """Fork one worker booted from *blueprint_wire*.

    ``close_fds`` lists every parent-side fd the child must drop —
    sibling pipes (so a crashed sibling's channel is not held half-open)
    and, under durability, the journal fds.  The new shard's own
    parent-side ends are added automatically.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        raise ParallelError(
            "the process backend requires the fork start method "
            "(POSIX only); use the serial backend here"
        )
    context = multiprocessing.get_context("fork")
    options = {
        "instrument": config.instrument,
        "share_plans": config.share_plans,
        "ship_logs": config.ship_logs,
    }
    from .worker import worker_main

    in_read, in_write = os.pipe()
    out_read, out_write = os.pipe()
    process = context.Process(
        target=worker_main,
        args=(
            shard_id,
            config.shards,
            in_read,
            out_write,
            list(close_fds) + [in_write, out_read],
            options,
            blueprint_wire,
        ),
        daemon=True,
        name=f"repro-shard-{shard_id}",
    )
    process.start()
    os.close(in_read)
    os.close(out_write)
    in_stream = os.fdopen(in_write, "wb")
    # Codec negotiation: the hello bytes are the first thing on the
    # event pipe, before any frame — the worker configures both channel
    # directions (and its host's raw/wire record shape) from them.
    write_hello(in_stream, config.wire_codec)
    return ProcessShard(
        shard_id,
        config,
        process,
        in_stream,
        os.fdopen(out_read, "rb"),
    )


def _start_process_shards(
    config: ShardConfig, blueprint: FederationBlueprint
) -> List[ProcessShard]:
    blueprint_wire = blueprint.to_wire()
    shards: List[ProcessShard] = []
    parent_fds: List[int] = []
    for shard_id in range(config.shards):
        shard = _spawn_worker(shard_id, config, blueprint_wire, parent_fds)
        # Every parent-side fd opened so far must be closed inside the
        # children forked later (see worker_main).
        parent_fds.extend((shard._in.fileno(), shard._out.fileno()))
        shards.append(shard)
    return shards


class ShardedFederation:
    """N shards behind the single-system API."""

    def __init__(
        self,
        blueprint: FederationBlueprint,
        config: Optional[ShardConfig] = None,
        router: Optional[ShardRouter] = None,
    ) -> None:
        self.config = config if config is not None else ShardConfig()
        self.router = router if router is not None else ShardRouter()
        self.blueprint = blueprint
        self._closed = False
        self._restore_instrumentation: Optional[bool] = None
        self._restore_logging: Optional[bool] = None
        #: Federation-wide observability plane, fed by the shards'
        #: piggybacked payloads on every stats/flush exchange.
        self.trace_assembler = TraceAssembler(
            sample_every=self.config.trace_sample_every
        )
        self.metrics_view = FederationMetricsView()
        self.log_view = FederationLogView()
        self.spans_dropped = 0
        #: Start the facade's own drain cursor at the process log's
        #: current position: records emitted before this federation
        #: existed are history, not federation traffic.
        self._local_log_cursor = _SLOG.seq
        if self.config.backend == "process":
            workers = _start_process_shards(self.config, blueprint)
            if self.config.durable_dir is not None:
                from ..durability.supervisor import SupervisedShard

                self.shards: List[Any] = [
                    SupervisedShard(
                        worker,
                        self.config,
                        blueprint,
                        self._respawn_worker,
                    )
                    for worker in workers
                ]
            else:
                self.shards = list(workers)
        else:
            if self.config.instrument and not _OBS.enabled:
                # Workers own their instrumentation plane; serial shards
                # share this process's, so flip it here and restore on
                # close.
                self._restore_instrumentation = _OBS.enabled
                _OBS.reset()
                _OBS.enable()
            if self.config.ship_logs and not _SLOG.enabled:
                # Same deal for the structured log: serial shards record
                # into this process's ring, drained by logs().
                self._restore_logging = _SLOG.enabled
                _SLOG.enabled = True
            self.shards = [
                SerialShard(shard_id, self.config)
                for shard_id in range(self.config.shards)
            ]
            for shard in self.shards:
                shard.bootstrap(blueprint)
        for shard in self.shards:
            shard.observability_sink = (
                lambda payload, sid=shard.shard_id: self._on_observability(
                    sid, payload
                )
            )
        self._buffers: List[List[Event]] = [
            [] for __ in range(self.config.shards)
        ]
        #: Everything drained so far, in merged order.
        self.delivered: List[ShardNotification] = []

    # -- recovery plumbing --------------------------------------------------

    def _parent_fds(self) -> List[int]:
        """Every parent-side fd a freshly forked worker must close:
        the live siblings' pipe ends and the shards' journal fds."""
        fds: List[int] = []
        for shard in self.shards:
            inner = getattr(shard, "inner", shard)
            if getattr(inner, "alive", False) and inner.backend == "process":
                for stream in (inner._in, inner._out):
                    try:
                        fds.append(stream.fileno())
                    except (OSError, ValueError):  # pragma: no cover
                        pass
            journal = getattr(shard, "journal", None)
            if journal is not None:
                try:
                    fds.append(journal.fileno())
                except (OSError, ValueError):  # pragma: no cover
                    pass
        return fds

    def _respawn_worker(
        self, shard_id: int, blueprint_wire: Dict[str, Any]
    ) -> ProcessShard:
        """Fork a replacement worker (the supervisor's respawn hook)."""
        return _spawn_worker(
            shard_id, self.config, blueprint_wire, self._parent_fds()
        )

    # -- events ------------------------------------------------------------

    def ingest(self, events: List[Event]) -> None:
        """Route events to their shards; ships full batches eagerly.

        Under instrumentation, every batch shipped from one ``ingest``
        call shares a single :class:`TraceContext` — one logical *wave*.
        A wave the assembler samples is recorded end to end: each shard
        the wave reaches opens a ``shard.ingest`` root span under the
        wave's context, and the shipped trees reassemble into one trace
        spanning every shard the wave touched.  Events left buffered
        here ship later under that wave's context (see
        :meth:`flush_buffers`).
        """
        router = self.router
        shard_count = self.config.shards
        batch_size = self.config.batch_size
        buffers = self._buffers
        ctx: Optional[TraceContext] = None
        for event in events:
            shard = router.shard_for(event, shard_count)
            buffer = buffers[shard]
            buffer.append(event)
            if len(buffer) >= batch_size:
                if ctx is None and self.config.instrument:
                    ctx = self.trace_assembler.begin("federation.ingest")
                self.shards[shard].send_events(buffer, ctx)
                buffers[shard] = []

    def flush_buffers(self) -> None:
        """Ship every partial batch (events keep per-shard order)."""
        if not any(self._buffers):
            return
        ctx: Optional[TraceContext] = None
        if self.config.instrument:
            ctx = self.trace_assembler.begin("federation.flush")
        for shard, buffer in enumerate(self._buffers):
            if buffer:
                self.shards[shard].send_events(buffer, ctx)
                self._buffers[shard] = []

    # -- specification lifecycle ------------------------------------------

    def deploy(self, spec: ShardSpec) -> None:
        """Fan a specification out to every shard (plan sharing stays
        per-shard: each pipeline interns its own copy)."""
        self.flush_buffers()
        for shard in self.shards:
            shard.deploy(spec)
        self._sync()
        self.blueprint.specifications.append(spec)

    def undeploy(self, spec_id: str) -> None:
        self.flush_buffers()
        for shard in self.shards:
            shard.undeploy(spec_id)
        self._sync()
        self.blueprint.specifications = [
            spec
            for spec in self.blueprint.specifications
            if spec.spec_id != spec_id
        ]

    def _sync(self) -> None:
        # Round-trip every shard even when an early one reports errors:
        # stopping at the first failure would leave later shards'
        # deferred errors undrained, poisoning the *next* operation.
        problems: List[str] = []
        for shard in self.shards:
            try:
                shard.sync()
            except ShardCrashError:
                raise
            except ParallelError as error:
                problems.append(str(error))
        if problems:
            raise ParallelError("; ".join(problems))

    # -- results -----------------------------------------------------------

    def drain(self) -> List[ShardNotification]:
        """Collect and deterministically merge new notifications.

        The merge key is ``(logical time, shard id, sequence)``: a total
        order independent of worker scheduling.  Per-shard sequence
        numbers increase with enqueue order, so notifications of one
        process instance (always co-sharded) keep their recognition
        order in the merged stream.
        """
        self.flush_buffers()
        merged: List[ShardNotification] = []
        for shard in self.shards:
            raw = shard.wire_codec == "binary"
            merged.extend(
                _notification_from_record(shard.shard_id, record, raw)
                for record in shard.flush()
            )
        merged.sort(key=lambda n: n.merge_key)
        self.delivered.extend(merged)
        return merged

    # -- observability ------------------------------------------------------

    def _on_observability(self, shard_id: int, payload: Dict[str, Any]) -> None:
        """Route one shard's piggybacked shipment into the facade views."""
        registry = payload.get("registry")
        if registry:
            self.metrics_view.update(shard_id, registry)
        spans = payload.get("spans")
        if spans:
            for batch in spans.get("batches", ()):
                self.trace_assembler.add_batch(batch)
            self.spans_dropped += int(spans.get("dropped", 0))
        logs = payload.get("logs")
        if logs:
            self.log_view.extend(
                shard_id,
                logs.get("records", ()),
                int(logs.get("dropped", 0)),
            )

    def refresh_observability(self) -> None:
        """Round-trip every live shard so the federation views are
        current (each read piggybacks the shard's latest shipment)."""
        for shard in self.shards:
            if shard.alive:
                try:
                    shard.stats()
                except (ShardCrashError, ParallelError):
                    continue

    def traces(self) -> Tuple[Dict[str, Any], ...]:
        """Assembled cross-shard traces, oldest first."""
        return self.trace_assembler.traces()

    def logs(self) -> FederationLogView:
        """The merged federation log, facade-process records included.

        Worker records arrive through the piggybacked shipments (call
        :meth:`refresh_observability` or any stats/drain first); the
        facade's own process log — which serial shards share — is
        drained here under :data:`FACADE_SHARD`.
        """
        records, dropped, cursor = _SLOG.drain(self._local_log_cursor)
        self._local_log_cursor = cursor
        self.log_view.extend(FACADE_SHARD, records, dropped)
        return self.log_view

    def metrics_registry(self) -> MetricsRegistry:
        """The merged federation registry: every shard's snapshot under
        its ``shard`` label, plus this process's default registry (stage
        histograms of serial shards, journal/supervisor counters) under
        the ``facade`` label."""
        merged = self.metrics_view.registry()
        merged.merge(default_registry().snapshot(), shard="facade")
        return merged

    def render_metrics(self) -> str:
        """Prometheus text exposition across the whole federation."""
        return self.metrics_registry().render_text()

    def health(
        self, rules: Optional[Tuple[SloRule, ...]] = None
    ) -> SystemHealth:
        """Threshold SLO rules evaluated over the merged federation
        registry — a breach inside any one worker surfaces here."""
        self.refresh_observability()
        return self.metrics_view.health(rules)

    def shard_stats(self) -> List[Dict[str, Any]]:
        """Per-shard rows for ``repro shards`` and the dashboard."""
        rows: List[Dict[str, Any]] = []
        for shard in self.shards:
            row: Dict[str, Any] = {
                "shard": shard.shard_id,
                "backend": shard.backend,
                "alive": shard.alive,
                "buffered": len(self._buffers[shard.shard_id]),
            }
            if shard.alive:
                try:
                    row.update(shard.stats())
                except ShardCrashError:
                    row["alive"] = False
            rows.append(row)
        return rows

    def stats(self) -> Dict[str, Any]:
        """The federation aggregate: counter sums across live shards.

        Numeric stats sum; anything a shard reports that cannot be
        summed (strings, flags, structures) is namespaced per shard as
        ``shard<N>/<key>`` instead of being silently dropped — a worker
        surfacing a non-counter datum deserves to be seen.
        """
        totals: Dict[str, Any] = {}
        alive = 0
        for row in self.shard_stats():
            if row["alive"]:
                alive += 1
            for key, value in row.items():
                if key in ("shard", "backend", "alive"):
                    continue
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    totals[f"shard{row['shard']}/{key}"] = value
                else:
                    totals[key] = totals.get(key, 0) + value
        totals["shards"] = self.config.shards
        totals["shards_alive"] = alive
        totals["notifications_merged"] = len(self.delivered)
        return totals

    def healthy(self) -> bool:
        return all(shard.alive for shard in self.shards)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            try:
                shard.close()
            except ShardCrashError:  # pragma: no cover - already logged
                pass
        if self._restore_instrumentation is not None:
            _OBS.enabled = self._restore_instrumentation
        if self._restore_logging is not None:
            _SLOG.enabled = self._restore_logging

    def __enter__(self) -> "ShardedFederation":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
