"""One shard's pipeline: a full Enactment System behind an ingest door.

Each shard — whether it lives in the facade's process (serial backend)
or in a forked worker (process backend) — hosts a complete Figure 5
pipeline: event bus, detector DAGs, and delivery.  :class:`ShardHost`
wraps the :class:`~repro.federation.system.EnactmentSystem` with exactly
the surface the sharding layer needs:

* **blueprint application** — participants, global roles, and awareness
  specifications (as DSL text, the repository's spec interchange format)
  are data, so a federation can be reconstructed in any process;
* **event ingest** — routed primitive events enter through the engine's
  own source-agent producers (``emit_batch``, so PR 4's run-grouping and
  ``consume_batch`` amortization apply unchanged);
* **result capture** — a recording delivery queue remembers global
  enqueue order, giving every notification the per-shard sequence number
  the deterministic merge sorts on.

Delivery stays *per-shard* by design: the events of a process instance
(and of every context routed with it) arrive on one shard, so the
notifications they trigger are enqueued there in recognition order —
merging streams is the facade's job, not the workers' (DESIGN note 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..awareness.dsl import compile_specification
from ..core.roles import Participant
from ..errors import ParallelError, SnapshotUnsupportedError
from ..events.event import Event
from ..events.producers import EventProducer
from ..events.queues import MemoryDeliveryQueue, Notification
from ..federation.system import EnactmentSystem
from ..observability import INSTRUMENTATION as _OBS
from ..observability import STRUCTURED_LOG as _LOG
from ..observability.registry import default_registry
from ..observability.trace import TraceContext, is_recorded
from .wire import encode_value

#: Upper bound on buffered sampled span batches awaiting shipment; the
#: hot path never blocks on observability — beyond this, batches are
#: dropped and counted.
MAX_SPAN_BATCHES = 128


@dataclass(frozen=True)
class ShardSpec:
    """One awareness specification as shippable data."""

    spec_id: str
    process_schema_id: str
    text: str

    def to_wire(self) -> Dict[str, Any]:
        return {
            "spec_id": self.spec_id,
            "process_schema_id": self.process_schema_id,
            "text": self.text,
        }

    @staticmethod
    def from_wire(data: Dict[str, Any]) -> "ShardSpec":
        return ShardSpec(
            data["spec_id"], data["process_schema_id"], data["text"]
        )


@dataclass
class FederationBlueprint:
    """The data-only bootstrap every shard applies at startup.

    ``participants`` is ``(participant_id, name)`` pairs; ``roles`` maps
    a global role name to its member participant ids (ordered — delivery
    fan-out order follows membership order).  Specifications deploy in
    list order on every shard, so detector wiring is identical across
    the federation.
    """

    participants: List[Tuple[str, str]] = field(default_factory=list)
    roles: Dict[str, List[str]] = field(default_factory=dict)
    specifications: List[ShardSpec] = field(default_factory=list)

    def add_participant(self, participant_id: str, name: str) -> None:
        self.participants.append((participant_id, name))

    def add_role(self, role_name: str, member_ids: List[str]) -> None:
        self.roles[role_name] = list(member_ids)

    def add_specification(self, spec: ShardSpec) -> None:
        self.specifications.append(spec)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "participants": [list(pair) for pair in self.participants],
            "roles": {name: list(ids) for name, ids in self.roles.items()},
            "specifications": [
                spec.to_wire() for spec in self.specifications
            ],
        }

    @staticmethod
    def from_wire(data: Dict[str, Any]) -> "FederationBlueprint":
        return FederationBlueprint(
            participants=[
                (pid, name) for pid, name in data.get("participants", [])
            ],
            roles={
                name: list(ids)
                for name, ids in data.get("roles", {}).items()
            },
            specifications=[
                ShardSpec.from_wire(spec)
                for spec in data.get("specifications", [])
            ],
        )


class RecordingDeliveryQueue(MemoryDeliveryQueue):
    """A memory queue that also remembers global enqueue order.

    The per-participant queues keep their normal semantics (``repro``
    clients still retrieve from them); ``records`` is the shard's total
    notification order, the source of per-shard sequence numbers.
    """

    def __init__(self) -> None:
        super().__init__()
        self.records: List[Notification] = []
        #: Sequence numbers already issued by a previous incarnation of
        #: this shard (restored from a snapshot); the shard's absolute
        #: sequence for ``records[i]`` is ``seq_offset + i``.
        self.seq_offset = 0

    def enqueue(self, notification: Notification) -> None:
        self.records.append(notification)
        super().enqueue(notification)


class ShardHost:
    """A full pipeline plus the shard-layer ingest/report surface."""

    def __init__(
        self,
        shard_id: int,
        shard_count: int,
        share_plans: bool = True,
        name: Optional[str] = None,
    ) -> None:
        self.shard_id = shard_id
        self.shard_count = shard_count
        self.queue = RecordingDeliveryQueue()
        self.system = EnactmentSystem(
            queue=self.queue,
            name=name or f"shard-{shard_id}",
            share_plans=share_plans,
        )
        awareness = self.system.awareness
        #: Ingest door per event type name.
        self._producers: Dict[str, EventProducer] = {
            awareness.activity_source.producer.output_type.name:
                awareness.activity_source.producer,
            awareness.context_source.producer.output_type.name:
                awareness.context_source.producer,
        }
        self._detectors: Dict[str, Any] = {}
        self._ingested: int = 0
        self._frames: int = 0
        #: Highest event-frame sequence number received (the worker's
        #: cumulative credit ack).  ``None`` until a sequenced frame
        #: arrives — unsequenced frames (serial shards, legacy JSON
        #: journals) never participate in the credit window.
        self.last_seq: Optional[int] = None
        self._reported: int = 0
        #: Bus publishes counted by a previous incarnation (snapshot
        #: restore); the fresh bus restarts at zero.
        self._published_offset: int = 0
        #: Sampled ingest span trees awaiting shipment to the facade
        #: (bounded; see :data:`MAX_SPAN_BATCHES`).
        self._span_batches: List[Dict[str, Any]] = []
        self._spans_dropped: int = 0
        #: Whether this host ships its process structured log to the
        #: facade (process-backend workers only; the worker entry point
        #: sets it from the shard options).
        self.ship_logs: bool = False
        #: Record shape of :meth:`drain_results`: ``True`` on a binary
        #: channel (native tuples/values — the codec ships them
        #: directly), ``False`` on the JSON path (``encode_value``'d
        #: JSON-safe records).  The worker entry point sets it from the
        #: negotiated codec.
        self.wire_raw: bool = False

    # -- sources -----------------------------------------------------------

    def register_external_source(
        self, name: str, producer: EventProducer
    ) -> EventProducer:
        """Add an application event source; its type becomes ingestable."""
        self.system.awareness.register_external_source(name, producer)
        self._producers[producer.output_type.name] = producer
        return producer

    # -- blueprint ---------------------------------------------------------

    def apply_blueprint(self, blueprint: FederationBlueprint) -> None:
        roles = self.system.core.roles
        by_id: Dict[str, Participant] = {}
        for participant_id, name in blueprint.participants:
            participant = self.system.register_participant(
                Participant(participant_id, name)
            )
            by_id[participant_id] = participant
        for role_name, member_ids in blueprint.roles.items():
            role = roles.define_role(role_name)
            for member_id in member_ids:
                member = by_id.get(member_id)
                if member is None:
                    raise ParallelError(
                        f"role {role_name!r} references unknown "
                        f"participant {member_id!r}"
                    )
                role.add_member(member)
        for spec in blueprint.specifications:
            self.deploy_spec(spec)

    def deploy_spec(self, spec: ShardSpec) -> None:
        if spec.spec_id in self._detectors:
            raise ParallelError(
                f"specification {spec.spec_id!r} is already deployed"
            )
        window = self.system.awareness.create_window(spec.process_schema_id)
        compile_specification(window, spec.text)
        self._detectors[spec.spec_id] = self.system.awareness.deploy(window)

    def undeploy_spec(self, spec_id: str) -> None:
        detector = self._detectors.pop(spec_id, None)
        if detector is None:
            raise ParallelError(f"specification {spec_id!r} is not deployed")
        self.system.awareness.undeploy(detector)

    # -- ingest ------------------------------------------------------------

    def ingest(
        self,
        events: List[Event],
        ctx: Optional[TraceContext] = None,
        seq: Optional[int] = None,
    ) -> None:
        """Feed routed primitive events into the pipeline, in order.

        Consecutive same-type runs enter as one ``emit_batch``, so the
        producers' run-grouping (and the shared plans' ``consume_batch``)
        see the same batch shapes an in-process engine would.

        ``seq`` is the facade's frame sequence number; it is recorded
        *before* processing so the frame's credit is returned to the
        sender even when ingest fails recoverably partway through.

        With a :class:`TraceContext` and instrumentation on, the whole
        batch runs under a ``shard.ingest`` root span whose sampling
        decision is the facade's, verbatim (no local re-sampling); a
        recorded tree is buffered for shipment on the next stats/flush
        frame.
        """
        if seq is not None:
            if self.last_seq is None or seq > self.last_seq:
                self.last_seq = seq
            self._frames += 1
        if ctx is not None and _OBS.enabled:
            tracer = _OBS.tracer
            span = tracer.begin_root(
                "shard.ingest",
                ctx.sampled,
                attributes={"shard": self.shard_id, "events": len(events)},
            )
            try:
                self._ingest(events)
            finally:
                tracer.end(span)
                if ctx.sampled and is_recorded(span):
                    if len(self._span_batches) >= MAX_SPAN_BATCHES:
                        self._spans_dropped += 1
                    else:
                        self._span_batches.append(
                            {
                                "trace": ctx.trace_id,
                                "parent": ctx.parent_span_id,
                                "shard": self.shard_id,
                                "span": span.to_dict(),
                            }
                        )
            return
        self._ingest(events)

    def _ingest(self, events: List[Event]) -> None:
        producers = self._producers
        i, n = 0, len(events)
        while i < n:
            type_name = events[i].type_name
            j = i + 1
            while j < n and events[j].type_name == type_name:
                j += 1
            producer = producers.get(type_name)
            if producer is None:
                raise ParallelError(
                    f"shard {self.shard_id} cannot ingest events of type "
                    f"{type_name!r}; no source producer is registered"
                )
            producer.emit_batch(events[i:j])
            self._ingested += j - i
            i = j

    # -- results -----------------------------------------------------------

    def drain_results(self) -> List[Dict[str, Any]]:
        """Notification records enqueued since the last drain.

        Each record carries the shard-local sequence number (position in
        global enqueue order) the deterministic merge needs, and — when
        instrumentation is on — the id-free provenance ``signature()`` of
        the delivery, computed *here* so the report is not capped by the
        tracker's ring buffer.
        """
        records = self.queue.records
        seq_offset = self.queue.seq_offset
        raw = self.wire_raw
        out: List[Dict[str, Any]] = []
        for seq in range(self._reported, len(records)):
            notification = records[seq]
            parameters = dict(notification.parameters)
            chain = parameters.pop("provenance", None)
            signature: Any = None
            if chain is not None:
                signature = (
                    notification.participant_id,
                    notification.schema_name,
                    notification.description,
                    notification.time,
                    chain.signature(),
                )
                if not raw:
                    signature = encode_value(signature)
            out.append(
                {
                    "seq": seq_offset + seq,
                    "id": notification.notification_id,
                    "participant": notification.participant_id,
                    "time": notification.time,
                    "schema": notification.schema_name,
                    "description": notification.description,
                    "instance": parameters.get("processInstanceId"),
                    "signature": signature,
                    "parameters": parameters
                    if raw
                    else encode_value(parameters),
                }
            )
        self._reported = len(records)
        return out

    # -- observability shipping --------------------------------------------

    def drain_spans(self) -> Dict[str, Any]:
        """Buffered sampled span batches (and the drop count), then clear."""
        batches, self._span_batches = self._span_batches, []
        dropped, self._spans_dropped = self._spans_dropped, 0
        return {"batches": batches, "dropped": dropped}

    def drain_logs(self, after_seq: int) -> Dict[str, Any]:
        """The process structured-log records past *after_seq* (shippable)."""
        records, dropped, cursor = _LOG.drain(after_seq)
        return {
            "records": [dict(record) for record in records],
            "dropped": dropped,
            "cursor": cursor,
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """One lossless snapshot covering this shard's metric space.

        The default registry carries the instrumentation plane's
        ``pipeline_stage_us`` histogram (and any standalone components);
        the system registry carries the pipeline gauges and counters.
        System instruments win name collisions — they are the
        authoritative pipeline truth.
        """
        snapshot = default_registry().snapshot()
        snapshot.update(self.system.metrics.snapshot())
        return snapshot

    # -- durability --------------------------------------------------------

    def live_operators(self) -> List[Any]:
        """The live operator instances, in deterministic order.

        Under plan sharing the live operators are the interned
        :class:`~repro.awareness.planner.SharedNode` instances the
        window's deploy resolved to — *not* the window's authoring-time
        copies — so enumeration walks each detector's
        :attr:`~repro.awareness.detector.DetectorAgent.plan` entries
        (topological order), deduplicated by identity (shared sub-DAGs
        appear under every window that references them).  Without plan
        sharing the window's own graph is the live wiring.

        The order is a pure function of the blueprint (specs deploy in
        list order, plan interning is deterministic), so a host rebuilt
        from the same blueprint enumerates the same operators — the
        contract :meth:`restore_state` relies on.
        """
        operators: List[Any] = []
        seen: Set[int] = set()
        for detector in self._detectors.values():
            plan = detector.plan
            if plan is not None:
                candidates = [entry.operator for entry in plan.entries]
            else:
                candidates = list(detector.window.operators())
            for operator in candidates:
                if id(operator) not in seen:
                    seen.add(id(operator))
                    operators.append(operator)
        return operators

    def snapshot_state(self) -> Optional[Dict[str, Any]]:
        """The host's recoverable state, or ``None`` if unencodable.

        ``None`` (some live operator holds state the snapshot codec
        cannot express) is a supported answer: the supervisor keeps the
        full journal and recovery replays from the beginning, which is
        always correct — just slower.
        """
        from ..durability.state import capture_operators

        try:
            operators = capture_operators(self.live_operators())
        except SnapshotUnsupportedError:
            return None
        return {
            "operators": operators,
            "recognized": [
                detector.recognized
                for detector in self._detectors.values()
            ],
            "recognized_retired": self.system.awareness._recognized_retired,
            "seq": self.queue.seq_offset + len(self.queue.records),
            "ingested": self._ingested,
            "published": (
                self._published_offset + self.system.bus.published_count()
            ),
            # Log-shipping high-watermark: a restored worker continues
            # numbering from here, so records re-emitted during journal
            # replay collide with already-shipped sequence numbers and
            # the facade-side watermark drops them (no double-count).
            "log_seq": _LOG.seq if self.ship_logs else None,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Load a :meth:`snapshot_state` payload into this fresh host.

        The blueprint must already be applied (same specs, same order);
        the journal tail above the snapshot's frame index is then
        replayed through :meth:`ingest` / :meth:`deploy_spec` as usual.
        """
        from ..durability.state import restore_operators

        restore_operators(self.live_operators(), state["operators"])
        detectors = list(self._detectors.values())
        recognized = state["recognized"]
        if len(detectors) != len(recognized):
            raise SnapshotUnsupportedError(
                f"snapshot carries {len(recognized)} detector counts but "
                f"{len(detectors)} specifications are deployed"
            )
        for detector, count in zip(detectors, recognized):
            detector.recognized = int(count)
        self.system.awareness._recognized_retired = int(
            state.get("recognized_retired", 0)
        )
        self.queue.seq_offset = int(state["seq"])
        self._ingested = int(state["ingested"])
        self._published_offset = int(state["published"])
        log_seq = state.get("log_seq")
        if self.ship_logs and log_seq is not None:
            _LOG.set_seq(int(log_seq))

    # -- inspection --------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """The shard's contribution to the federation aggregate."""
        awareness = self.system.awareness.stats()
        return {
            "events_ingested": self._ingested,
            "frames_ingested": self._frames,
            "composites_recognized": awareness["composites_recognized"],
            "notifications": (
                self.queue.seq_offset + len(self.queue.records)
            ),
            "queue_depth": self.queue.pending_count(),
            "specs_deployed": len(self._detectors),
            "bus_published": (
                self._published_offset + self.system.bus.published_count()
            ),
            "instrumented": 1 if _OBS.enabled else 0,
        }

    def close(self) -> None:
        self.queue.close()
