"""The shard worker process: one pipeline behind two pipes.

``worker_main`` is the forked child's entry point.  It owns one
:class:`~repro.parallel.host.ShardHost` and serves frames from its input
pipe in arrival order; it only ever *writes* in response to ``stats`` /
``flush`` requests, so the channel cannot deadlock — the parent's event
sends are pipelined fire-and-forget (pipe backpressure is the flow
control) and every read the parent performs has exactly one pending
response.

Protocol frames (see :mod:`repro.parallel.wire` for the framing):

* ``{"kind": "events", "events": [...]}`` — ingest a routed batch;
* ``{"kind": "deploy", "spec": {...}}`` / ``{"kind": "undeploy",
  "spec_id": ...}`` — detector lifecycle;
* ``{"kind": "stats"}`` → ``{"kind": "stats", "stats": {...},
  "errors": [...]}``;
* ``{"kind": "flush"}`` → ``{"kind": "results", "notifications": [...]}``
  — drain the recorded notification stream (sequence numbers included);
* ``{"kind": "snapshot"}`` → ``{"kind": "snapshot", "state": {...}}`` —
  the host's recoverable state (``state`` is ``null`` when a live
  operator holds state the snapshot codec cannot express; the
  supervisor then keeps the full journal instead);
* ``{"kind": "restore", "state": {...}}`` — load a snapshot payload
  into the freshly booted host (sent once, right after fork, before the
  journal tail is replayed);
* ``{"kind": "shutdown"}`` → ``{"kind": "bye"}`` and a clean exit — the
  poison pill.

Recoverable per-frame failures (a bad spec, an unroutable event type)
are recorded and reported with the next ``stats`` response; anything
else writes a final ``error`` frame and exits nonzero so the parent sees
EOF, not a hang.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List

from ..errors import ReproError
from ..observability import INSTRUMENTATION as _OBS
from .host import FederationBlueprint, ShardHost, ShardSpec
from .wire import event_from_wire, read_frame, write_frame


def worker_main(
    shard_id: int,
    shard_count: int,
    in_fd: int,
    out_fd: int,
    close_fds: List[int],
    options: Dict[str, Any],
    blueprint_wire: Dict[str, Any],
) -> None:
    """Serve one shard until the poison pill (or EOF) arrives."""
    # A fork copies every parent fd, including the pipes of sibling
    # workers forked earlier.  Holding those copies would keep a crashed
    # sibling's channel half-open (the parent would never see EOF), so
    # each worker first drops everything that is not its own pair.
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover - already closed
            pass

    # Instrumentation is process-global; the fork inherited the parent's
    # flag, so set it to what the shard config asks for, explicitly.
    if options.get("instrument"):
        _OBS.reset()
        _OBS.enable()
    else:
        _OBS.disable()

    inp = os.fdopen(in_fd, "rb")
    out = os.fdopen(out_fd, "wb")
    exit_code = 0
    errors: List[str] = []
    try:
        host = ShardHost(
            shard_id,
            shard_count,
            share_plans=bool(options.get("share_plans", True)),
        )
        host.apply_blueprint(FederationBlueprint.from_wire(blueprint_wire))
        while True:
            frame = read_frame(inp)
            if frame is None:  # parent vanished: treat as shutdown
                break
            kind = frame.get("kind")
            try:
                if kind == "events":
                    host.ingest(
                        [event_from_wire(data) for data in frame["events"]]
                    )
                elif kind == "deploy":
                    host.deploy_spec(ShardSpec.from_wire(frame["spec"]))
                elif kind == "undeploy":
                    host.undeploy_spec(frame["spec_id"])
                elif kind == "stats":
                    write_frame(
                        out,
                        {
                            "kind": "stats",
                            "stats": host.stats(),
                            "errors": list(errors),
                        },
                    )
                    errors.clear()
                elif kind == "flush":
                    write_frame(
                        out,
                        {
                            "kind": "results",
                            "notifications": host.drain_results(),
                        },
                    )
                elif kind == "snapshot":
                    write_frame(
                        out,
                        {
                            "kind": "snapshot",
                            "state": host.snapshot_state(),
                        },
                    )
                elif kind == "restore":
                    host.restore_state(frame["state"])
                elif kind == "shutdown":
                    write_frame(out, {"kind": "bye"})
                    break
                else:
                    errors.append(f"unknown frame kind {kind!r}")
            except ReproError as error:
                # Recoverable: the pipeline is still consistent.  Report
                # with the next stats exchange instead of dying.
                errors.append(f"{kind}: {error}")
    except BaseException as error:  # pragma: no cover - crash path
        exit_code = 1
        try:
            write_frame(
                out, {"kind": "error", "error": f"{type(error).__name__}: {error}"}
            )
        except OSError:
            pass
    finally:
        try:
            out.close()
        except OSError:  # pragma: no cover
            pass
        try:
            inp.close()
        except OSError:  # pragma: no cover
            pass
    os._exit(exit_code)
