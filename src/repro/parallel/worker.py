"""The shard worker process: one pipeline behind two pipes.

``worker_main`` is the forked child's entry point.  It owns one
:class:`~repro.parallel.host.ShardHost` and serves frames from its input
pipe in arrival order; it only ever *writes* in response to ``stats`` /
``flush`` requests, so the channel cannot deadlock — the parent's event
sends are pipelined fire-and-forget (pipe backpressure is the flow
control) and every read the parent performs has exactly one pending
response.

Protocol frames (see :mod:`repro.parallel.wire` for the framing):

* ``{"kind": "events", "events": [...], "seq": N,
  "trace": [tid, psid, 0|1]}`` — ingest a routed batch; ``seq`` is the
  facade's per-shard frame sequence number (the credit window's unit),
  and the optional ``trace`` context carries the facade's head-sampling
  decision, honored verbatim (no re-sampling);
* ``{"kind": "deploy", "spec": {...}}`` / ``{"kind": "undeploy",
  "spec_id": ...}`` — detector lifecycle;
* ``{"kind": "stats"}`` → ``{"kind": "stats", "stats": {...},
  "errors": [...], "acked": N, "observability": {...}}``;
* ``{"kind": "flush"}`` → ``{"kind": "results", "notifications": [...],
  "acked": N, "observability": {...}}``
  — drain the recorded notification stream (sequence numbers included).

Every response piggybacks ``acked`` — the highest event-frame ``seq``
fully ingested — so the facade retires in-flight credits on reads it
already performs.  When ``ack_every`` event frames arrive with no read
pending (a pure write stream), the worker volunteers a standalone
``{"kind": "ack", "acked": N}`` so the window never starves the sender
of credits.

Both read responses piggyback an ``observability`` payload — the shard's
full metrics-registry snapshot, its buffered sampled span batches, and
(when ``ship_logs`` is on) the structured-log records past the shipping
cursor — so the facade's federation views refresh on every read without
extra round trips, and span/log shipping rides frames that already
exist;
* ``{"kind": "snapshot"}`` → ``{"kind": "snapshot", "state": {...}}`` —
  the host's recoverable state (``state`` is ``null`` when a live
  operator holds state the snapshot codec cannot express; the
  supervisor then keeps the full journal instead);
* ``{"kind": "restore", "state": {...}}`` — load a snapshot payload
  into the freshly booted host (sent once, right after fork, before the
  journal tail is replayed);
* ``{"kind": "shutdown"}`` → ``{"kind": "bye"}`` and a clean exit — the
  poison pill.

Recoverable per-frame failures (a bad spec, an unroutable event type)
are recorded and reported with the next ``stats`` response; anything
else writes a final ``error`` frame and exits nonzero so the parent sees
EOF, not a hang.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List

from ..errors import ReproError
from ..observability import INSTRUMENTATION as _OBS
from ..observability import STRUCTURED_LOG as _SLOG
from .codec import make_reader, make_writer, read_hello
from .host import FederationBlueprint, ShardHost, ShardSpec
from .wire import (
    ACKED_KEY,
    SEQ_KEY,
    ack_frame,
    event_from_wire,
    extract_trace,
    write_frame,
)


def worker_main(
    shard_id: int,
    shard_count: int,
    in_fd: int,
    out_fd: int,
    close_fds: List[int],
    options: Dict[str, Any],
    blueprint_wire: Dict[str, Any],
) -> None:
    """Serve one shard until the poison pill (or EOF) arrives."""
    # A fork copies every parent fd, including the pipes of sibling
    # workers forked earlier.  Holding those copies would keep a crashed
    # sibling's channel half-open (the parent would never see EOF), so
    # each worker first drops everything that is not its own pair.
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover - already closed
            pass

    # Instrumentation is process-global; the fork inherited the parent's
    # flag, so set it to what the shard config asks for, explicitly.
    if options.get("instrument"):
        _OBS.reset()
        _OBS.enable()
    else:
        _OBS.disable()
    # Structured logging is likewise process-global and inherited; a
    # log-shipping worker records into its own ring (no sink — the
    # facade drains over the frame protocol), others stay silent.
    ship_logs = bool(options.get("ship_logs"))
    _SLOG.clear()
    # The fork also inherited the parent's emission counter; a fresh
    # worker's stream starts at 1 so the shipping cursor below (and the
    # supervisor's replay watermark) line up with what this worker emits.
    _SLOG.set_seq(0)
    _SLOG.enabled = ship_logs
    #: The shipped-records high-watermark: records at or below it have
    #: already crossed the pipe (or were re-emitted during replay after
    #: a snapshot restore reset the emission counter beneath it).
    log_cursor = 0

    def observability() -> Dict[str, Any]:
        nonlocal log_cursor
        payload: Dict[str, Any] = {
            "registry": host.metrics_snapshot(),
            "spans": host.drain_spans(),
        }
        if ship_logs:
            logs = host.drain_logs(log_cursor)
            log_cursor = int(logs["cursor"])
            payload["logs"] = logs
        return payload

    inp = os.fdopen(in_fd, "rb")
    out = os.fdopen(out_fd, "wb")
    exit_code = 0
    errors: List[str] = []
    writer: Any = None
    try:
        # Codec negotiation: the parent's hello bytes precede every
        # frame on the event pipe and configure both channel directions.
        codec = read_hello(inp)
        raw = codec == "binary"
        reader = make_reader(inp, codec)
        writer = make_writer(out, codec)
        host = ShardHost(
            shard_id,
            shard_count,
            share_plans=bool(options.get("share_plans", True)),
        )
        host.ship_logs = ship_logs
        host.wire_raw = raw
        host.apply_blueprint(FederationBlueprint.from_wire(blueprint_wire))
        # Credit bookkeeping: event frames since the last ack crossed
        # the pipe (in either piggybacked or standalone form).  The
        # threshold keeps a pure write stream credited without a
        # dedicated exchange per frame.
        ack_every = max(1, int(options.get("ack_every", 1)))
        unacked = 0

        def piggyback_ack(response: Dict[str, Any]) -> Dict[str, Any]:
            nonlocal unacked
            if host.last_seq is not None:
                response[ACKED_KEY] = host.last_seq
                unacked = 0
            return response

        while True:
            frame = reader.read()
            if frame is None:  # parent vanished: treat as shutdown
                break
            kind = frame.get("kind")
            try:
                if kind == "events":
                    seq = frame.get(SEQ_KEY)
                    if seq is not None:
                        unacked += 1
                    try:
                        # A binary channel delivers the events
                        # themselves; the JSON path their wire dicts.
                        host.ingest(
                            list(frame["events"])
                            if raw
                            else [
                                event_from_wire(data)
                                for data in frame["events"]
                            ],
                            extract_trace(frame),
                            seq=seq,
                        )
                    finally:
                        # The frame consumed a credit even if ingest
                        # failed recoverably — ack it regardless, or
                        # the facade's window leaks shut.
                        if seq is not None and unacked >= ack_every:
                            writer.write(ack_frame(seq))
                            unacked = 0
                elif kind == "deploy":
                    host.deploy_spec(ShardSpec.from_wire(frame["spec"]))
                elif kind == "undeploy":
                    host.undeploy_spec(frame["spec_id"])
                elif kind == "stats":
                    writer.write(
                        piggyback_ack(
                            {
                                "kind": "stats",
                                "stats": host.stats(),
                                "errors": list(errors),
                                "observability": observability(),
                            }
                        )
                    )
                    errors.clear()
                elif kind == "flush":
                    writer.write(
                        piggyback_ack(
                            {
                                "kind": "results",
                                "notifications": host.drain_results(),
                                "observability": observability(),
                            }
                        )
                    )
                elif kind == "snapshot":
                    writer.write(
                        {
                            "kind": "snapshot",
                            "state": host.snapshot_state(),
                        }
                    )
                elif kind == "restore":
                    host.restore_state(frame["state"])
                    # The restore moved the log's emission counter to the
                    # snapshot's position; records below it are covered
                    # state, not unshipped backlog, so the shipping
                    # cursor must not count them as dropped.
                    log_cursor = _SLOG.seq
                elif kind == "shutdown":
                    writer.write({"kind": "bye"})
                    break
                else:
                    errors.append(f"unknown frame kind {kind!r}")
            except ReproError as error:
                # Recoverable: the pipeline is still consistent.  Report
                # with the next stats exchange instead of dying.
                errors.append(f"{kind}: {error}")
    except BaseException as error:  # pragma: no cover - crash path
        exit_code = 1
        frame = {"kind": "error", "error": f"{type(error).__name__}: {error}"}
        try:
            if writer is not None:
                writer.write(frame)
            else:
                # The hello never arrived: the parent's reader codec is
                # unknown, so fall back to the JSON framing (the parent
                # still sees a fail-fast error, worst case as EOF).
                write_frame(out, frame)
        except OSError:
            pass
    finally:
        try:
            out.close()
        except OSError:  # pragma: no cover
            pass
        try:
            inp.close()
        except OSError:  # pragma: no cover
            pass
    os._exit(exit_code)
