"""Overlapped shard I/O: one selector over every worker pipe pair.

The federation facade talks to N forked workers over N pipe pairs.
Before this module, every collective operation round-tripped the
workers *one at a time* — a 4-shard drain cost the **sum** of per-shard
latencies — and ingest had no flow control: a slow shard either blocked
the whole wave inside a blocking ``write`` or buffered unboundedly in
the pipe.

:class:`ChannelMultiplexer` owns every channel (a :class:`MuxChannel`
per worker) and drives all of them from one ``selectors`` loop:

* **Non-blocking buffered writes.**  Both pipe ends are switched to
  non-blocking mode.  A queued frame is encoded once and appended to
  the channel's outbound byte queue; :meth:`MuxChannel.pump_writes`
  drains the queue as far as the pipe accepts (partial writes resume at
  the recorded offset).  The facade never sleeps inside a single
  shard's full pipe while other shards starve.

* **Readiness-driven reads.**  Worker responses are parsed out of a
  per-channel inbound buffer as length-prefixed frames whenever the
  read end is ready, regardless of which shard the facade is currently
  waiting on.  Decoded frames land in the channel's inbox in arrival
  order — the frame correlation the broadcast-then-gather collectives
  rely on.

* **Broadcast-then-gather.**  :meth:`ChannelMultiplexer.gather` waits
  for one expected frame per channel while pumping *all* channels, so
  a collective costs the **max** of the per-shard latencies, not the
  sum.  A worker dying mid-gather (EOF, write failure, or an
  out-of-band ``error`` frame racing the collective) marks its channel
  dead with the reason attributed; the gather still completes every
  other channel before the caller surfaces the crash.

* **Credit-based backpressure.**  Event frames carry a sequence number
  (:data:`~repro.parallel.wire.SEQ_KEY`); workers grant credits by
  acking the highest sequence they fully ingested — piggybacked on
  every stats/flush response plus standalone
  :data:`~repro.parallel.wire.ACK_KIND` frames past a threshold.  The
  facade caps in-flight event frames per channel
  (``ShardConfig.max_inflight``); :meth:`ChannelMultiplexer.wait_for_credit`
  stalls *only the hot shard's queue*, never the wave, and keeps
  pumping every channel while it waits (so the ack that releases the
  stall can actually arrive).

Everything here is single-threaded: the facade thread drives the loop,
so there is no locking and the credit arithmetic cannot race.
"""

from __future__ import annotations

import json
import os
import selectors
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Tuple

from ..errors import WireError
from .codec import BinaryDecoder, BinaryEncoder
from .wire import ACK_KIND, ACKED_KEY, MAX_FRAME_BYTES, SEQ_KEY, frame_bytes

#: Bytes requested per ``os.read`` when a channel's read end is ready.
READ_CHUNK = 1 << 16

#: Selector wait (seconds) per pump iteration inside a blocking gather
#: or credit stall.  Short enough that a worker death surfaces quickly,
#: long enough not to spin.
POLL_INTERVAL = 0.05


class MuxChannel:
    """One worker's duplex channel under the multiplexer.

    Owns the raw (non-blocking) pipe fds, the outbound byte queue, the
    inbound parse buffer, the decoded-frame inbox, and the credit
    window accounting.  All state transitions happen on the facade
    thread via the owning :class:`ChannelMultiplexer`.
    """

    def __init__(
        self,
        shard_id: int,
        in_fd: int,
        out_fd: int,
        codec: str,
        max_inflight: int,
    ) -> None:
        self.shard_id = shard_id
        #: Facade-to-worker pipe end (events, requests).
        self.in_fd = in_fd
        #: Worker-to-facade pipe end (responses, acks, errors).
        self.out_fd = out_fd
        self.codec = codec
        self.max_inflight = max_inflight
        os.set_blocking(in_fd, False)
        os.set_blocking(out_fd, False)
        # A fresh channel means fresh interning tables on both pipe
        # directions — the respawn-resets-the-tables contract of the
        # binary codec holds because the encoder/decoder live here.
        if codec == "binary":
            self._encoder: Optional[BinaryEncoder] = BinaryEncoder()
            self._decoder: Optional[BinaryDecoder] = BinaryDecoder()
        else:
            self._encoder = None
            self._decoder = None
        #: Encoded frames (length prefix included) awaiting pipe space.
        self._outq: Deque[bytes] = deque()
        #: Bytes of the queue head already written to the pipe.
        self._head_offset = 0
        #: Total bytes queued but not yet written (facade-side memory).
        self.pending_bytes = 0
        self._inbuf = bytearray()
        #: Decoded worker frames awaiting correlation, arrival order.
        self.inbox: Deque[Dict[str, Any]] = deque()
        #: Highest event-frame sequence queued on *this* channel, and
        #: the worker's cumulative ack.  Both lazily initialise from the
        #: first event frame queued, so a respawned channel replaying a
        #: journal tail (original sequence numbers, arbitrary start)
        #: counts only its own frames as in flight.
        self.last_sent_seq: Optional[int] = None
        self.last_acked_seq: Optional[int] = None
        #: Times a send had to wait (or defer) for the credit window.
        self.stalls = 0
        #: Crash attribution; ``None`` while the channel is healthy.
        self.dead: Optional[str] = None
        self._closed = False

    # -- credit window -----------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Event frames sent on this channel but not yet acked."""
        if self.last_sent_seq is None or self.last_acked_seq is None:
            return 0
        return max(0, self.last_sent_seq - self.last_acked_seq)

    def has_credit(self) -> bool:
        """Whether one more event frame fits the in-flight window."""
        return self.dead is None and self.outstanding < self.max_inflight

    # -- outbound ----------------------------------------------------------

    def encode(self, frame: Mapping[str, Any]) -> bytes:
        """*frame* as channel bytes, length prefix included."""
        if self._encoder is not None:
            return self._encoder.encode_frame(frame)
        return frame_bytes(frame)

    def queue(self, frame: Mapping[str, Any]) -> None:
        """Queue *frame* for transmission and pump what fits now.

        Event frames carrying :data:`SEQ_KEY` advance the credit
        window; callers gate on :meth:`has_credit` (or
        :meth:`ChannelMultiplexer.wait_for_credit`) first.
        """
        if self.dead is not None:
            raise BrokenPipeError(self.dead)
        data = self.encode(frame)
        seq = frame.get(SEQ_KEY)
        if frame.get("kind") == "events" and isinstance(seq, int):
            if self.last_sent_seq is None:
                # First event frame on this channel: whatever sequence
                # it carries defines the window's origin.
                self.last_acked_seq = seq - 1
            self.last_sent_seq = seq
        self._outq.append(data)
        self.pending_bytes += len(data)
        self.pump_writes()

    def pump_writes(self) -> None:
        """Write queued bytes until the pipe is full or the queue dry."""
        while self._outq and self.dead is None:
            head = self._outq[0]
            try:
                written = os.write(
                    self.in_fd, memoryview(head)[self._head_offset:]
                )
            except BlockingIOError:
                return
            except (BrokenPipeError, OSError) as error:
                self.fail(f"send failed: {error}")
                return
            self.pending_bytes -= written
            self._head_offset += written
            if self._head_offset >= len(head):
                self._outq.popleft()
                self._head_offset = 0

    @property
    def wants_write(self) -> bool:
        return bool(self._outq) and self.dead is None

    # -- inbound -----------------------------------------------------------

    def pump_reads(self) -> None:
        """Read whatever the worker sent; parse and dispatch frames."""
        while self.dead is None:
            try:
                chunk = os.read(self.out_fd, READ_CHUNK)
            except BlockingIOError:
                break
            except OSError as error:
                self.fail(f"receive failed: {error}")
                return
            if not chunk:
                self._parse_frames()
                self.fail("channel closed")
                return
            self._inbuf += chunk
            if len(chunk) < READ_CHUNK:
                break
        self._parse_frames()

    def _parse_frames(self) -> None:
        buffer = self._inbuf
        position = 0
        available = len(buffer)
        while self.dead is None and available - position >= 4:
            length = int.from_bytes(buffer[position:position + 4], "big")
            if length > MAX_FRAME_BYTES:
                self.fail(f"receive failed: frame of {length} bytes")
                break
            if available - position - 4 < length:
                break
            payload = bytes(buffer[position + 4:position + 4 + length])
            position += 4 + length
            try:
                frame = self._decode(payload)
            except (WireError, ValueError) as error:
                self.fail(f"receive failed: {error}")
                break
            self._dispatch(frame)
        if position:
            del buffer[:position]

    def _decode(self, payload: bytes) -> Dict[str, Any]:
        if self._decoder is not None:
            return self._decoder.decode_payload(payload)
        decoded = json.loads(payload.decode("utf-8"))
        if not isinstance(decoded, dict):
            raise WireError(f"frame is not an object: {decoded!r}")
        return decoded

    def _dispatch(self, frame: Dict[str, Any]) -> None:
        """Route one decoded frame: credits here, the rest to the inbox.

        ``error`` frames — a worker's last words, possibly racing a
        gather for a different response — mark the channel dead with
        the worker's reason attributed instead of being mistaken for a
        protocol violation.  Standalone acks are pure credit grants and
        never reach the inbox.
        """
        acked = frame.get(ACKED_KEY)
        if isinstance(acked, int) and (
            self.last_acked_seq is None or acked > self.last_acked_seq
        ):
            self.last_acked_seq = acked
        kind = frame.get("kind")
        if kind == ACK_KIND:
            return
        if kind == "error":
            self.fail(f"worker error: {frame.get('error')}")
            return
        self.inbox.append(frame)

    # -- lifecycle ---------------------------------------------------------

    def fail(self, reason: str) -> None:
        """Mark the channel dead (first reason wins)."""
        if self.dead is None:
            self.dead = reason

    def close_fds(self) -> None:
        """Close both pipe ends (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for fd in (self.in_fd, self.out_fd):
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass


class ChannelMultiplexer:
    """All worker channels behind one ``selectors`` loop."""

    def __init__(self) -> None:
        self._selector = selectors.DefaultSelector()
        self._channels: Dict[int, MuxChannel] = {}
        #: Channels currently registered for write readiness (a pipe
        #: with queued bytes); read registration is permanent.
        self._write_armed: Dict[int, bool] = {}
        #: Optional stall observer: called with the stalling channel
        #: whenever a credit wait (or a deferred batch) begins.
        self.on_stall: Optional[Callable[[MuxChannel], None]] = None

    # -- registration ------------------------------------------------------

    def register(self, channel: MuxChannel) -> None:
        self._channels[channel.shard_id] = channel
        self._selector.register(
            channel.out_fd, selectors.EVENT_READ, (channel, "read")
        )
        self._write_armed[channel.shard_id] = False

    def unregister(self, channel: MuxChannel) -> None:
        """Detach *channel* (idempotent); fds stay open for the caller."""
        if self._channels.get(channel.shard_id) is not channel:
            return
        del self._channels[channel.shard_id]
        try:
            self._selector.unregister(channel.out_fd)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass
        if self._write_armed.pop(channel.shard_id, False):
            try:
                self._selector.unregister(channel.in_fd)
            except (KeyError, ValueError):  # pragma: no cover
                pass

    def channel(self, shard_id: int) -> Optional[MuxChannel]:
        return self._channels.get(shard_id)

    # -- the loop ----------------------------------------------------------

    def _arm_writes(self) -> None:
        for shard_id, channel in self._channels.items():
            wants = channel.wants_write
            armed = self._write_armed[shard_id]
            if wants and not armed:
                self._selector.register(
                    channel.in_fd, selectors.EVENT_WRITE, (channel, "write")
                )
                self._write_armed[shard_id] = True
            elif armed and not wants:
                try:
                    self._selector.unregister(channel.in_fd)
                except (KeyError, ValueError):  # pragma: no cover
                    pass
                self._write_armed[shard_id] = False

    def pump(self, timeout: float = 0.0) -> None:
        """One multiplexing step across every channel.

        Flushes what fits, reads what arrived, dispatches credits and
        inbox frames.  ``timeout`` is the longest the step may sleep
        waiting for readiness; ``0`` polls.
        """
        self._arm_writes()
        if not self._channels:
            return
        for key, _events in self._selector.select(timeout):
            channel, direction = key.data
            if direction == "read":
                channel.pump_reads()
            else:
                channel.pump_writes()

    # -- collectives -------------------------------------------------------

    def gather(
        self, wants: Mapping[int, str]
    ) -> Tuple[Dict[int, Dict[str, Any]], Dict[int, str]]:
        """Wait for one *expected-kind* frame per channel in *wants*.

        Returns ``(frames, crashed)``: a response frame per shard that
        answered, a reason per shard whose channel died first.  The
        wave always completes — every wanted channel resolves to a
        frame or a crash before this returns, so no stale response is
        left behind to poison the next collective.  A frame of any
        other kind on a gathered channel is the protocol violation it
        always was (out-of-band ``error`` and ``ack`` frames are
        dispatched before frames reach the inbox, so they can never be
        mislabelled here).
        """
        pending: Dict[int, str] = dict(wants)
        frames: Dict[int, Dict[str, Any]] = {}
        crashed: Dict[int, str] = {}
        while True:
            for shard_id in list(pending):
                channel = self._channels.get(shard_id)
                if channel is None:
                    crashed[shard_id] = "channel unregistered"
                    del pending[shard_id]
                    continue
                while channel.inbox and shard_id in pending:
                    frame = channel.inbox.popleft()
                    kind = frame.get("kind")
                    if kind == pending[shard_id]:
                        frames[shard_id] = frame
                        del pending[shard_id]
                    else:
                        channel.fail(
                            f"protocol violation: expected "
                            f"{pending[shard_id]!r} frame, got {kind!r}"
                        )
                if shard_id in pending and channel.dead is not None:
                    crashed[shard_id] = channel.dead
                    del pending[shard_id]
            if not pending:
                return frames, crashed
            self.pump(POLL_INTERVAL)

    # -- backpressure ------------------------------------------------------

    def wait_for_credit(self, channel: MuxChannel) -> bool:
        """Block until *channel* has window space; ``False`` if it died.

        Every other channel keeps pumping while this one waits — acks,
        responses, and crash notices all still flow, which is what
        makes the wait finite.
        """
        if channel.has_credit():
            return True
        channel.stalls += 1
        if self.on_stall is not None:
            self.on_stall(channel)
        while not channel.has_credit():
            if channel.dead is not None:
                return False
            self.pump(POLL_INTERVAL)
        return True

    def flush_channel(self, channel: MuxChannel) -> bool:
        """Drive *channel*'s outbound queue dry; ``False`` if it died."""
        while channel.wants_write:
            self.pump(POLL_INTERVAL)
            if channel.dead is not None:
                return False
        return channel.dead is None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        for channel in list(self._channels.values()):
            self.unregister(channel)
        self._selector.close()


def inflight_snapshot(
    channels: List[MuxChannel],
) -> Dict[Tuple[str, ...], float]:
    """Per-shard in-flight frame counts, shaped for a multi-label gauge."""
    return {
        (str(channel.shard_id),): float(channel.outstanding)
        for channel in channels
    }
