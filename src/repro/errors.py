"""Exception hierarchy for the CMI reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers embedding the library can catch a single base class.  The hierarchy
mirrors the layering of the system: model errors (schemas, states,
resources), enactment errors (coordination), event-processing errors
(awareness descriptions, operators), and delivery errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# CMM model errors (CORE)
# ---------------------------------------------------------------------------


class SchemaError(ReproError):
    """A CMM schema (activity, resource, or state schema) is malformed."""


class StateError(SchemaError):
    """An activity state schema or state machine constraint was violated."""


class UnknownStateError(StateError):
    """A state name does not exist in the activity state schema."""


class InvalidTransitionError(StateError):
    """A requested state transition is not allowed by the state schema."""


class ResourceError(ReproError):
    """A resource schema or resource instance constraint was violated."""


class ContextError(ResourceError):
    """A context resource was misused."""


class UnknownFieldError(ContextError):
    """A context field name does not exist in the context schema."""


class ScopeError(ContextError):
    """An activity touched a context it has no reference to (out of scope)."""


class RoleError(ResourceError):
    """A participant role was misused."""


class RoleResolutionError(RoleError):
    """A role could not be resolved to participants at detection time."""


# ---------------------------------------------------------------------------
# Coordination (CM) errors
# ---------------------------------------------------------------------------


class DependencyError(ReproError):
    """A dependency variable is malformed or references unknown activities."""


class EnactmentError(ReproError):
    """Process enactment was driven into an illegal operation."""


class WorklistError(EnactmentError):
    """A work item was claimed or completed by the wrong participant."""


# ---------------------------------------------------------------------------
# Event substrate errors
# ---------------------------------------------------------------------------


class EventError(ReproError):
    """An event or event type was malformed."""


class EventTypeError(EventError):
    """An event does not conform to its declared event type."""


class QueueError(ReproError):
    """A persistent delivery queue failed or was misused."""


# ---------------------------------------------------------------------------
# Awareness model (AM) errors
# ---------------------------------------------------------------------------


class SpecificationError(ReproError):
    """An awareness specification is malformed."""


class DagValidationError(SpecificationError):
    """An awareness description DAG violates a structural constraint."""


class SlotError(SpecificationError):
    """An operator input slot was wired with the wrong type or cardinality."""


class ParameterError(SpecificationError):
    """An event operator was instantiated with invalid parameters."""


class DeliveryError(ReproError):
    """Awareness delivery to participants failed."""


# ---------------------------------------------------------------------------
# Service model (SM) errors
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """A service definition, agreement, or invocation failed."""


# ---------------------------------------------------------------------------
# Parallel / sharded enactment errors
# ---------------------------------------------------------------------------


class ParallelError(ReproError):
    """The sharded execution layer was misused or misconfigured."""


class WireError(ParallelError):
    """A wire-protocol frame was malformed or truncated."""


class ShardCrashError(ParallelError):
    """A shard worker process died; its channel is unusable."""


class DurabilityError(ParallelError):
    """The write-ahead journal or a shard snapshot was misused or corrupt."""


class SnapshotUnsupportedError(DurabilityError):
    """A live operator holds state the snapshot encoder cannot express."""


# ---------------------------------------------------------------------------
# Workload / benchmark errors
# ---------------------------------------------------------------------------


class WorkloadError(ReproError):
    """A synthetic workload was configured inconsistently."""
