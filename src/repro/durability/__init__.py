"""Durable enactment: write-ahead journals, snapshots, crash recovery.

The paper's Enactment System is long-running infrastructure; this
package makes the sharded execution layer (:mod:`repro.parallel`)
survive worker crashes without losing or duplicating notifications:

* :mod:`~repro.durability.log` — the per-shard write-ahead
  :class:`FrameLog`: length-prefixed wire frames on disk, fsync-batched,
  torn-tail tolerant, compactable without renumbering;
* :mod:`~repro.durability.state` — the snapshot codec for live operator
  state (partition maps, counters, held events with provenance);
* :mod:`~repro.durability.snapshot` — :class:`ShardSnapshot`, the
  atomic pairing of a journal position with the blueprint and host
  state that cover it;
* :mod:`~repro.durability.supervisor` — :class:`SupervisedShard`, the
  journal-then-send / respawn-and-replay loop the facade wraps around
  each process shard when :attr:`ShardConfig.durable_dir` is set.

The recovery contract is *exact continuation*: the provenance-signature
multiset of a crashed-and-recovered run equals the uninterrupted run's
(QE12 asserts it), because replay regenerates the per-shard stream
deterministically and the facade's ``(time, shard, seq)`` merge keys
suppress notifications it already merged.
"""

from .log import CONTROL_COMPACTED, FrameLog, log_base, read_file_frames, scan
from .snapshot import SNAPSHOT_VERSION, ShardSnapshot
from .state import (
    capture_operator,
    capture_operators,
    decode_state,
    encode_state,
    restore_operator,
    restore_operators,
)
from .supervisor import (
    JOURNAL_FILENAME,
    SNAPSHOT_FILENAME,
    SupervisedShard,
    shard_directory,
)

__all__ = [
    "CONTROL_COMPACTED",
    "FrameLog",
    "JOURNAL_FILENAME",
    "SNAPSHOT_FILENAME",
    "SNAPSHOT_VERSION",
    "ShardSnapshot",
    "SupervisedShard",
    "capture_operator",
    "capture_operators",
    "decode_state",
    "encode_state",
    "log_base",
    "read_file_frames",
    "restore_operator",
    "restore_operators",
    "scan",
    "shard_directory",
]
