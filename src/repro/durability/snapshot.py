"""Shard snapshots: a consistent cut of one shard's recoverable state.

A snapshot pairs a *journal position* with everything a fresh
:class:`~repro.parallel.host.ShardHost` needs to continue as if it had
processed every journal frame below that position:

* the **blueprint** as of the snapshot (participants, roles, and the
  specifications currently deployed — run-time deploys/undeploys
  included), so the rebuilt pipeline wires the same detector DAGs in the
  same order;
* the **host state** (:meth:`ShardHost.snapshot_state`): per-operator
  partition maps and counters, per-detector recognition counts, the
  absolute delivery sequence (so recovered notifications continue the
  per-shard numbering the deterministic merge sorts on), and the ingest
  counters.

Snapshots are written atomically (temp file + ``rename`` after fsync) so
a crash mid-snapshot leaves the previous snapshot intact, and carry the
journal frame index they cover: recovery = boot from snapshot, then
replay the journal tail from that index.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import DurabilityError

SNAPSHOT_VERSION = 1


@dataclass
class ShardSnapshot:
    """One shard's persisted recovery point."""

    shard_id: int
    #: Absolute journal index of the first frame NOT covered: replay
    #: starts here.
    frame_index: int
    #: ``FederationBlueprint.to_wire()`` as of the snapshot.
    blueprint: Dict[str, Any]
    #: ``ShardHost.snapshot_state()`` payload (operators, seq, counters).
    state: Dict[str, Any]
    #: Wire codec of the journal this snapshot compacted — offline tools
    #: read it instead of sniffing the journal's magic.  Snapshots
    #: written before the binary codec existed carry no field and
    #: default to ``"json"``; the version stays 1 (the field is
    #: additive and optional).
    codec: str = "json"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SNAPSHOT_VERSION,
            "shard_id": self.shard_id,
            "frame_index": self.frame_index,
            "blueprint": self.blueprint,
            "state": self.state,
            "codec": self.codec,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ShardSnapshot":
        version = data.get("version")
        if version != SNAPSHOT_VERSION:
            raise DurabilityError(
                f"unsupported snapshot version {version!r} "
                f"(expected {SNAPSHOT_VERSION})"
            )
        return ShardSnapshot(
            shard_id=int(data["shard_id"]),
            frame_index=int(data["frame_index"]),
            blueprint=dict(data["blueprint"]),
            state=dict(data["state"]),
            codec=str(data.get("codec", "json")),
        )

    # -- persistence -------------------------------------------------------

    def save(self, path: str) -> None:
        """Write atomically: a crash mid-write keeps the old snapshot."""
        replacement = f"{path}.tmp"
        with open(replacement, "w") as handle:
            json.dump(self.to_dict(), handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(replacement, path)

    @staticmethod
    def load(path: str) -> Optional["ShardSnapshot"]:
        """The snapshot at *path*, or ``None`` when there is none yet."""
        if not os.path.exists(path):
            return None
        with open(path) as handle:
            try:
                data = json.load(handle)
            except ValueError as error:
                raise DurabilityError(
                    f"snapshot {path!r} is corrupt: {error}"
                ) from None
        return ShardSnapshot.from_dict(data)
