"""The shard supervisor: journal every mutation, respawn the dead.

:class:`SupervisedShard` wraps one process-backend shard with the
durability loop:

* **journal-then-send** — every mutating frame (event batch, deploy,
  undeploy) is appended to the shard's write-ahead :class:`FrameLog`
  *before* it crosses the worker pipe, so the facade can reconstruct the
  exact frame sequence a dead worker had received (or was about to);
* **snapshot cadence** — every ``snapshot_every`` journaled frames the
  worker is asked for its recoverable state (the request rides the
  ordered pipe, so the reply reflects exactly the frames journaled so
  far); the snapshot is persisted atomically and the journal compacts
  down to the frames it does not cover;
* **recovery** — when the worker dies (:class:`ShardCrashError` from any
  interaction), a replacement is forked from the snapshot's blueprint
  (or the genesis blueprint when no snapshot succeeded yet), the
  snapshot state is restored, and the journal tail replays through the
  rebuilt pipeline.  Replay regenerates the per-shard notification
  stream deterministically, so notifications the facade already merged
  come back with the same ``(time, shard, seq)`` keys — the sequence
  high-watermark in :meth:`SupervisedShard.flush` drops them, and the
  merged stream continues exactly where it left off.

The retry discipline is asymmetric by design: **mutations are never
resent** (the journaled frame is part of the replay tail — a resend
would double-apply), while **reads are retried once** after recovery
(they are idempotent against the rebuilt worker).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..errors import ShardCrashError
from ..events.event import Event
from ..observability import STRUCTURED_LOG as _SLOG
from ..observability import Counter, default_registry
from ..observability.trace import TraceContext
from ..parallel.host import FederationBlueprint, ShardSpec
from ..parallel.wire import strip_trace_sampling
from .log import FrameLog
from .snapshot import ShardSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..parallel.federation import ProcessShard, ShardConfig
    from ..parallel.mux import MuxChannel

#: A respawn callback: fork a replacement worker for ``shard_id`` booted
#: from ``blueprint_wire`` (the facade supplies it so the child closes
#: every sibling pipe and journal fd it inherits).
Respawn = Callable[[int, Dict[str, Any]], "ProcessShard"]

JOURNAL_FILENAME = "journal.log"
SNAPSHOT_FILENAME = "snapshot.json"


def shard_directory(root: str, shard_id: int) -> str:
    """The (created) durable state directory of one shard."""
    path = os.path.join(root, f"shard-{shard_id}")
    os.makedirs(path, exist_ok=True)
    return path


def _counters() -> Dict[str, Counter]:
    registry = default_registry()
    return {
        "recoveries": registry.counter(
            "shard_recoveries",
            "Shard workers respawned and replayed after a crash",
        ),
        "journal_frames": registry.counter(
            "journal_frames_total",
            "Frames appended to shard write-ahead journals",
        ),
        "snapshots": registry.counter(
            "shard_snapshots_total",
            "Shard snapshots persisted",
        ),
    }


class SupervisedShard:
    """A process shard with a write-ahead journal and crash recovery."""

    backend = "process"

    def __init__(
        self,
        inner: "ProcessShard",
        config: "ShardConfig",
        blueprint: FederationBlueprint,
        respawn: Respawn,
    ) -> None:
        assert config.durable_dir is not None
        self.shard_id = inner.shard_id
        self.config = config
        self.inner = inner
        #: The facade's live blueprint (shared, mutated by deploys);
        #: snapshots serialize its state as of the snapshot request.
        self._blueprint = blueprint
        #: Frozen copy of the blueprint the worker booted with — the
        #: replay starting point until a snapshot succeeds.
        self._genesis = blueprint.to_wire()
        self._respawn = respawn
        directory = shard_directory(config.durable_dir, self.shard_id)
        # The journal shares the channel's codec: a journaled frame is
        # exactly the frame that crossed (or will cross) the worker
        # pipe, so recovery replays it verbatim.  Opening a journal left
        # by a deployment on the *other* codec re-encodes it in place.
        self.journal = FrameLog(
            os.path.join(directory, JOURNAL_FILENAME),
            fsync_every=config.fsync_every,
            codec=config.wire_codec,
        )
        self.snapshot_path = os.path.join(directory, SNAPSHOT_FILENAME)
        #: Frames below this index predate this federation (a reused
        #: durable directory); the genesis blueprint already covers them.
        self._genesis_index = self.journal.frame_count
        self._snapshot: Optional[ShardSnapshot] = None
        #: Highest notification sequence the facade has merged; replayed
        #: duplicates at or below it are dropped in :meth:`flush`.
        self._seq_high = -1
        #: Highest structured-log sequence number forwarded to the
        #: facade; records a recovered worker re-emits during journal
        #: replay carry sequence numbers at or below it (the snapshot
        #: restored the worker's emission counter) and are filtered out
        #: here so the merged log never double-counts.
        self._log_seq_high = 0
        self._sink: Optional[Callable[[Dict[str, Any]], None]] = None
        self.recoveries = 0
        self._metrics = _counters()

    @property
    def alive(self) -> bool:
        return self.inner.alive

    @property
    def wire_codec(self) -> str:
        """The negotiated channel (and journal) codec."""
        return self.inner.wire_codec

    @property
    def channel(self) -> "MuxChannel":
        """The current worker's multiplexer channel (changes on respawn)."""
        return self.inner.channel

    def has_credit(self) -> bool:
        return self.inner.has_credit()

    # -- observability forwarding ------------------------------------------

    @property
    def observability_sink(self) -> Optional[Callable[[Dict[str, Any]], None]]:
        return self._sink

    @observability_sink.setter
    def observability_sink(
        self, sink: Optional[Callable[[Dict[str, Any]], None]]
    ) -> None:
        self._sink = sink
        self._install_sink()

    def _install_sink(self) -> None:
        """(Re)attach the log-watermark filter to the current worker."""
        if self._sink is None:
            self.inner.observability_sink = None
            return

        def filtered(payload: Dict[str, Any]) -> None:
            logs = payload.get("logs")
            if logs:
                records = [
                    record
                    for record in logs.get("records", ())
                    if int(record.get("_seq", 0)) > self._log_seq_high
                ]
                if records:
                    self._log_seq_high = max(
                        int(record.get("_seq", 0)) for record in records
                    )
                logs = dict(logs)
                logs["records"] = records
                payload = dict(payload)
                payload["logs"] = logs
            sink = self._sink
            if sink is not None:
                sink(payload)

        self.inner.observability_sink = filtered

    # -- mutations (journal-then-send, replay is the retry) ----------------

    def _journal_and_send(
        self, frame: Dict[str, Any], credit: bool = False
    ) -> None:
        self.journal.append(frame)
        self._metrics["journal_frames"].inc()
        try:
            self.inner._send(frame, credit=credit)
        except ShardCrashError:
            # The frame is already in the journal: recovery replays it
            # into the replacement worker.  Resending would double-apply.
            self.recover()

    def send_events(
        self, events: List[Event], ctx: Optional[TraceContext] = None
    ) -> None:
        # The sequence number is assigned before journaling, so the
        # journaled frame is byte-for-byte the frame that crosses (or
        # crossed) the pipe — replay re-credits the in-flight window
        # from the original numbers.  Journal-before-send still holds
        # for queued writes: by the time a frame enters the channel's
        # outbound queue it is already on disk.
        self._journal_and_send(
            self.inner.make_events_frame(events, ctx), credit=True
        )
        self._maybe_snapshot()

    def deploy(self, spec: ShardSpec) -> None:
        self._journal_and_send({"kind": "deploy", "spec": spec.to_wire()})

    def undeploy(self, spec_id: str) -> None:
        self._journal_and_send({"kind": "undeploy", "spec_id": spec_id})

    # -- reads (idempotent, retried once after recovery) -------------------

    def _fresh_records(
        self, records: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Drop replayed duplicates at or below the merge watermark."""
        fresh = [
            record
            for record in records
            if int(record["seq"]) > self._seq_high
        ]
        if fresh:
            self._seq_high = int(fresh[-1]["seq"])
        return fresh

    def flush(self) -> List[Dict[str, Any]]:
        try:
            records = self.inner.flush()
        except ShardCrashError:
            self.recover()
            records = self.inner.flush()
        return self._fresh_records(records)

    def stats(self) -> Dict[str, int]:
        try:
            stats = dict(self.inner.stats())
        except ShardCrashError:
            self.recover()
            stats = dict(self.inner.stats())
        return self._augment_stats(stats)

    def _augment_stats(self, stats: Dict[str, int]) -> Dict[str, int]:
        stats["recoveries"] = self.recoveries
        stats["journal_frames"] = self.journal.frame_count
        return stats

    def sync(self) -> None:
        try:
            self.inner.sync()
        except ShardCrashError:
            self.recover()
            self.inner.sync()

    # -- split-phase collectives (recover-and-retry on either phase) -------

    def begin_flush(self) -> None:
        try:
            self.inner.begin_flush()
        except ShardCrashError:
            self.recover()
            self.inner.begin_flush()

    def end_flush(
        self, frame: Optional[Dict[str, Any]] = None
    ) -> List[Dict[str, Any]]:
        try:
            records = self.inner.end_flush(frame)
        except ShardCrashError:
            # The worker died between broadcast and gather; the
            # replacement replays the journal, then a fresh blocking
            # round trip re-asks the question (reads are idempotent).
            self.recover()
            records = self.inner.flush()
        return self._fresh_records(records)

    def begin_stats(self) -> None:
        try:
            self.inner.begin_stats()
        except ShardCrashError:
            self.recover()
            self.inner.begin_stats()

    def end_stats(
        self, frame: Optional[Dict[str, Any]] = None
    ) -> Tuple[Dict[str, int], List[str]]:
        try:
            stats, errors = self.inner.end_stats(frame)
        except ShardCrashError:
            self.recover()
            stats, errors = self.inner._stats_round_trip()
        return self._augment_stats(dict(stats)), errors

    # -- snapshots ---------------------------------------------------------

    def _covered_index(self) -> int:
        snapshot = self._snapshot
        return (
            snapshot.frame_index
            if snapshot is not None
            else self._genesis_index
        )

    def _maybe_snapshot(self) -> None:
        every = self.config.snapshot_every
        if not every:
            return
        if self.journal.frame_count - self._covered_index() >= every:
            self.take_snapshot()

    def take_snapshot(self) -> Optional[ShardSnapshot]:
        """Snapshot the worker's state now; ``None`` when not possible.

        The round trip rides the ordered pipe, so the reply reflects
        exactly the ``frame_index`` frames journaled before the request.
        A ``None`` state (some live operator is not snapshot-encodable)
        leaves the full journal in place — recovery replays from the
        previous covered index, which is always correct.
        """
        frame_index = self.journal.frame_count
        try:
            self.inner._send({"kind": "snapshot"})
            state = self.inner._receive("snapshot")["state"]
        except ShardCrashError:
            self.recover()
            return None
        if state is None:
            _SLOG.emit(
                "durability",
                "snapshot_unsupported",
                level="warning",
                shard=self.shard_id,
                frame_index=frame_index,
            )
            return None
        snapshot = ShardSnapshot(
            shard_id=self.shard_id,
            frame_index=frame_index,
            blueprint=self._blueprint.to_wire(),
            state=state,
            codec=self.wire_codec,
        )
        # Invariant for offline tools: a snapshot on disk never covers
        # frames the journal has not durably written.
        self.journal.sync()
        snapshot.save(self.snapshot_path)
        self._snapshot = snapshot
        self._metrics["snapshots"].inc()
        self.journal.compact(frame_index)
        if _SLOG.enabled:
            _SLOG.emit(
                "durability",
                "snapshot_taken",
                shard=self.shard_id,
                frame_index=frame_index,
                journal_frames=self.journal.frame_count - frame_index,
            )
        return snapshot

    # -- recovery ----------------------------------------------------------

    def recover(self) -> None:
        """Respawn the worker and replay it back to the present.

        Boot state is the latest snapshot (blueprint + operator state)
        or the genesis blueprint; then every journal frame above the
        covered index replays through the rebuilt pipeline in order.
        The final ``sync()`` round-trips the channel so a restore or
        replay failure surfaces here — as a recovery error — rather
        than poisoning the next regular operation.
        """
        if self.recoveries >= self.config.max_recoveries:
            raise ShardCrashError(
                f"shard {self.shard_id} crashed again after "
                f"{self.recoveries} recoveries (max_recoveries="
                f"{self.config.max_recoveries}); giving up"
            )
        self.recoveries += 1
        self._metrics["recoveries"].inc()
        snapshot = self._snapshot
        start = self._covered_index()
        blueprint_wire = (
            snapshot.blueprint if snapshot is not None else self._genesis
        )
        _SLOG.emit(
            "durability",
            "shard_recovery_started",
            level="warning",
            shard=self.shard_id,
            attempt=self.recoveries,
            from_frame=start,
            snapshot=snapshot is not None,
        )
        old = self.inner
        old.discard()
        self.journal.sync()
        tail = self.journal.tail(start)
        self.inner = self._respawn(self.shard_id, blueprint_wire)
        # The replacement continues the old sequence counter, so
        # replayed frames keep their journaled numbers and new frames
        # never collide with them.  The fresh channel's credit window
        # lazily re-bases on the first replayed frame's sequence — the
        # in-flight window is re-credited, not inherited.
        self.inner._next_seq = old._next_seq
        self._install_sink()
        if snapshot is not None:
            self.inner._send({"kind": "restore", "state": snapshot.state})
        for frame in tail:
            # The sampled waves in the tail already shipped their spans
            # before the crash; replay with the sampling decision forced
            # off so the assembler never sees the same wave twice.  (The
            # journal file itself is untouched.)  Event frames replay
            # under the same credit discipline as live traffic.
            self.inner._send(
                strip_trace_sampling(frame),
                credit=frame.get("kind") == "events",
            )
        self.inner.sync()
        _SLOG.emit(
            "durability",
            "shard_recovered",
            level="warning",
            shard=self.shard_id,
            attempt=self.recoveries,
            replayed=len(tail),
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        try:
            self.inner.close()
        finally:
            self.journal.close()
