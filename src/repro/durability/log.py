"""The write-ahead frame log: length-prefixed frames on disk.

One :class:`FrameLog` is one append-only file of wire frames in either
channel codec.  A **binary** journal (the default, matching the shard
channel's default) starts with the :data:`JOURNAL_MAGIC` header and
carries :mod:`repro.parallel.codec` frames — the exact bytes-for-bytes
encoding the worker pipe speaks, raw events included; a **JSON** journal
is the 4-byte length prefix + UTF-8 JSON framing of
:mod:`repro.parallel.wire`.  Readers auto-detect the codec from the
first bytes (the magic's first byte can never begin a valid JSON frame:
as a length prefix it would exceed ``MAX_FRAME_BYTES``), so journals
written before the binary codec existed keep replaying — and opening a
journal under the *other* codec atomically re-encodes it, converting
event frames between their raw and wire forms, so one file never mixes
codecs.

Binary journals are *self-contained*: the interning tables start empty
at the first frame, every define-record is inline, and compaction
rewrites the file under a fresh encoder — a decoder starting at byte
four replays any cut.  Reopening a binary journal for append decodes
the existing frames once and seeds the append encoder with the decoder's
tables, so new frames keep referencing the established ids.

Write policy is *coalescing with fsync batching*: appends accumulate in
a buffer that is written with a **single** ``os.write`` per fsync batch
(``journal_writes_total`` counts the physical writes), and ``os.fsync``
runs once per ``fsync_every`` appends and on :meth:`sync`.  A machine
crash — or now a facade-process crash mid-batch — can lose at most the
last ``fsync_every`` frames; with ``fsync_every=0`` every append is
written and flushed to the OS immediately (no coalescing, never
fsynced), preserving the pre-batching process-crash durability.

Frame *indices are absolute* (counted from the journal's creation):
snapshots record the absolute index they cover, and compaction — which
drops covered frames — preserves the numbering by writing a control
frame ``{"kind": "compacted", "base": N}`` as the new first frame, so a
compacted log is self-describing and offline tools need no sidecar.

A killed writer can leave a *torn* final frame (partial header or
payload).  :func:`scan` tolerates it: the log is valid up to the last
complete frame, and opening a log for append truncates the torn tail so
the next frame starts clean — the standard WAL repair rule.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import DurabilityError, WireError
from ..events.event import Event
from ..observability import STRUCTURED_LOG as _SLOG
from ..observability import Counter, default_registry
from ..parallel.codec import (
    WIRE_CODECS,
    BinaryDecoder,
    BinaryEncoder,
)
from ..parallel.wire import (
    MAX_FRAME_BYTES,
    event_from_wire,
    event_to_wire,
    frame_bytes,
)

#: Frame kind of the compaction control frame (never replayed).
CONTROL_COMPACTED = "compacted"

#: First bytes of a binary journal file.  The leading ``0xC3`` byte is
#: deliberate: read as a JSON frame's length prefix it decodes to ~3.2
#: GB — far beyond ``MAX_FRAME_BYTES`` — so a JSON reader fails fast
#: instead of misparsing, and auto-detection is unambiguous.
JOURNAL_MAGIC = b"\xc3RJ1"


def detect_codec(path: str) -> Optional[str]:
    """The codec of the journal at *path*; ``None`` if missing/empty."""
    try:
        with open(path, "rb") as stream:
            head = stream.read(len(JOURNAL_MAGIC))
    except FileNotFoundError:
        return None
    if not head:
        return None
    return "binary" if head == JOURNAL_MAGIC else "json"


def _load(
    path: str,
) -> Tuple[str, List[Dict[str, Any]], int, bool, Optional[BinaryDecoder]]:
    """Read a whole journal: ``(codec, frames, valid_bytes, torn, decoder)``.

    Binary frames must decode in file order against one decoder (the
    interning tables are stream state); the decoder comes back so an
    append-side encoder can adopt its tables.
    """
    codec = detect_codec(path) or "json"
    frames: List[Dict[str, Any]] = []
    torn = False
    decoder: Optional[BinaryDecoder] = None
    with open(path, "rb") as stream:
        if codec == "binary":
            decoder = BinaryDecoder()
            valid = len(stream.read(len(JOURNAL_MAGIC)))
            while True:
                header = stream.read(4)
                if not header:
                    break
                if len(header) < 4:
                    torn = True
                    break
                length = int.from_bytes(header, "big")
                if length > MAX_FRAME_BYTES:
                    torn = True
                    break
                payload = stream.read(length)
                if len(payload) < length:
                    torn = True
                    break
                try:
                    frames.append(decoder.decode_payload(payload))
                except WireError:
                    torn = True
                    break
                valid = stream.tell()
        else:
            from ..parallel.wire import read_frame

            valid = 0
            while True:
                try:
                    frame = read_frame(stream)
                except WireError:
                    torn = True
                    break
                if frame is None:
                    break
                frames.append(frame)
                valid = stream.tell()
    if not torn:
        # A clean EOF and a lone partial header both end the loop;
        # compare against the file size to tell them apart.
        torn = os.path.getsize(path) > valid
    return codec, frames, valid, torn, decoder


def scan(path: str) -> Tuple[int, int, bool]:
    """Scan a frame log file: ``(file_frames, valid_bytes, torn_tail)``.

    ``file_frames`` counts every complete frame physically present
    (including a leading control frame); ``valid_bytes`` is the offset
    just past the last complete frame (the codec magic included);
    ``torn_tail`` is true when bytes beyond it exist but do not form a
    whole frame (a crash mid-append).  The codec is auto-detected.
    """
    __, frames, valid, torn, __decoder = _load(path)
    return len(frames), valid, torn


def read_file_frames(path: str, skip: int = 0) -> List[Dict[str, Any]]:
    """Complete frames from file frame *skip* on (torn tail ignored).

    The codec is auto-detected; binary journals return their frames
    with native values (raw events included)."""
    __, frames, __valid, __torn, __decoder = _load(path)
    return frames[skip:]


def log_base(path: str) -> int:
    """The absolute index of the first payload frame in the file."""
    __, frames, __valid, __torn, __decoder = _load(path)
    if frames and frames[0].get("kind") == CONTROL_COMPACTED:
        return int(frames[0]["base"])
    return 0


def convert_frame(frame: Dict[str, Any], codec: str) -> Dict[str, Any]:
    """*frame* in the channel form of *codec*.

    Only ``events`` frames differ between codecs: binary channels carry
    the events themselves, JSON channels their ``event_to_wire`` dicts.
    Every other frame kind is codec-neutral and passes through.
    """
    if frame.get("kind") != "events":
        return frame
    events = frame.get("events") or []
    if codec == "binary":
        if events and not isinstance(events[0], Event):
            frame = dict(frame)
            frame["events"] = [event_from_wire(data) for data in events]
    elif events and isinstance(events[0], Event):
        frame = dict(frame)
        frame["events"] = [
            event_to_wire(event, provenance=True) for event in events
        ]
    return frame


def _journal_counters() -> Dict[str, Counter]:
    registry = default_registry()
    return {
        "writes": registry.counter(
            "journal_writes_total",
            "Physical journal writes (one per coalesced frame batch)",
        ),
    }


class FrameLog:
    """An append-only, write-coalescing, fsync-batched log of frames."""

    def __init__(
        self, path: str, fsync_every: int = 16, codec: str = "binary"
    ) -> None:
        if fsync_every < 0:
            raise DurabilityError("fsync_every must be >= 0 (0 = never)")
        if codec not in WIRE_CODECS:
            raise DurabilityError(
                f"unknown journal codec {codec!r}; "
                f"expected one of {WIRE_CODECS}"
            )
        self.path = path
        self.fsync_every = fsync_every
        self.codec = codec
        self._unsynced = 0
        self.appended = 0
        self.bytes_written = 0
        #: Physical write calls issued (appends - writes = syscalls the
        #: coalescing saved); also exported as ``journal_writes_total``.
        self.writes_total = 0
        self._metrics = _journal_counters()
        #: Pending encoded frames awaiting one coalesced write.
        self._buffer = bytearray()
        self._encoder = BinaryEncoder()
        #: Absolute index of the file's first payload frame (compaction
        #: shifts it forward; indices handed out stay stable).
        self.base = 0
        file_frames = 0
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        if not fresh:
            detected, frames, valid, torn, decoder = _load(path)
            if frames and frames[0].get("kind") == CONTROL_COMPACTED:
                self.base = int(frames[0]["base"])
                file_frames = len(frames) - 1
            else:
                file_frames = len(frames)
            if detected != codec:
                # Re-encode the whole file under the requested codec so
                # it never mixes framings; the torn tail (if any) dies
                # with the rewrite.  Event frames convert between their
                # raw and wire forms; the fresh encoder used for the
                # rewrite becomes the append encoder (its tables match
                # the file exactly).
                self._recode(frames)
                _SLOG.emit(
                    "durability",
                    "journal_recoded",
                    level="warning",
                    path=path,
                    frames=file_frames,
                    from_codec=detected,
                    to_codec=codec,
                )
            else:
                if torn:
                    # Torn tail from a previous crashed writer: truncate
                    # to the last complete frame so appends start clean.
                    with open(path, "r+b") as repair:
                        repair.truncate(valid)
                    _SLOG.emit(
                        "durability",
                        "journal_tail_truncated",
                        level="warning",
                        path=path,
                        frames=file_frames,
                        valid_bytes=valid,
                    )
                    if codec == "binary":
                        # A tail torn mid-decode may have polluted the
                        # decoder's intern tables with defines that just
                        # got truncated away; re-read the repaired file
                        # so the seed matches the surviving bytes.
                        __d, __f, __v, __t, decoder = _load(path)
                if codec == "binary" and decoder is not None:
                    # Seed the append encoder with the tables the file's
                    # frames established, so new refs stay consistent.
                    self._encoder.seed(
                        decoder.interned_strings,
                        decoder.interned_compounds,
                    )
        #: Absolute count of payload frames ever appended (next index).
        self.frame_count = self.base + file_frames
        self._stream = open(path, "ab")
        if fresh and codec == "binary":
            self._stream.write(JOURNAL_MAGIC)
            self._stream.flush()

    def _encode(self, frame: Mapping[str, Any]) -> bytes:
        if self.codec == "binary":
            return self._encoder.encode_frame(
                convert_frame(dict(frame), "binary")
            )
        return frame_bytes(convert_frame(dict(frame), "json"))

    def _recode(self, frames: List[Dict[str, Any]]) -> None:
        """Atomically rewrite the file under ``self.codec``."""
        replacement = f"{self.path}.recode"
        self._encoder = BinaryEncoder()
        with open(replacement, "wb") as stream:
            if self.codec == "binary":
                stream.write(JOURNAL_MAGIC)
            for frame in frames:
                stream.write(self._encode(frame))
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(replacement, self.path)

    # -- writing -----------------------------------------------------------

    def append(self, frame: Mapping[str, Any]) -> int:
        """Append one frame; returns its absolute index.

        The encoded frame lands in the coalescing buffer; it reaches
        the OS with the batch's single write (at the fsync point, or —
        with ``fsync_every=0`` — immediately).
        """
        data = self._encode(frame)
        self._buffer += data
        self.bytes_written += len(data)
        index = self.frame_count
        self.frame_count += 1
        self.appended += 1
        self._unsynced += 1
        if self.fsync_every:
            if self._unsynced >= self.fsync_every:
                self.sync()
        else:
            # fsync_every=0 keeps the historical per-append OS write:
            # a facade crash then still loses nothing (only a machine
            # crash can).
            self._flush_buffer()
        return index

    def _flush_buffer(self) -> None:
        """One ``os.write`` for every frame buffered since the last."""
        if self._buffer:
            self._stream.write(self._buffer)
            self._stream.flush()
            self.writes_total += 1
            self._metrics["writes"].inc()
            del self._buffer[:]

    def sync(self) -> None:
        """Write the coalesced batch and force the batched fsync now."""
        self._flush_buffer()
        if self._unsynced:
            os.fsync(self._stream.fileno())
            self._unsynced = 0

    # -- reading / maintenance --------------------------------------------

    def tail(self, start: int) -> List[Dict[str, Any]]:
        """Frames from absolute index *start* on (buffered appends included)."""
        if start < self.base:
            raise DurabilityError(
                f"frames before index {self.base} were compacted away; "
                f"cannot read from {start}"
            )
        self._flush_buffer()
        skip = (start - self.base) + (1 if self.base else 0)
        return read_file_frames(self.path, skip)

    def compact(self, keep_from: int) -> int:
        """Drop frames below absolute index *keep_from* (atomic rewrite).

        Called after a snapshot: frames the snapshot already covers are
        dead weight for recovery.  A binary journal is rewritten under a
        **fresh** encoder — the interning tables reset at the compaction
        boundary, so the surviving cut is self-contained — and the fresh
        encoder takes over for subsequent appends.  Returns the
        surviving payload frame count.
        """
        if keep_from <= self.base:
            return self.frame_count - self.base
        if keep_from > self.frame_count:
            raise DurabilityError(
                f"cannot compact past the end of the log "
                f"({keep_from} > {self.frame_count} frames)"
            )
        self.sync()
        survivors = self.tail(keep_from)
        self._stream.close()
        self._recode(
            [{"kind": CONTROL_COMPACTED, "base": keep_from}] + survivors
        )
        self._stream = open(self.path, "ab")
        self.base = keep_from
        return len(survivors)

    def fileno(self) -> int:
        return self._stream.fileno()

    def close(self) -> None:
        if not self._stream.closed:
            self.sync()
            self._stream.close()

    def __enter__(self) -> "FrameLog":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
