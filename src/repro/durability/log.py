"""The write-ahead frame log: length-prefixed frames on disk.

One :class:`FrameLog` is one append-only file of wire frames — the same
4-byte length prefix + UTF-8 JSON encoding the shard channel speaks
(:mod:`repro.parallel.wire`), so a journaled event batch is byte-for-byte
the frame that crossed (or will cross) the worker pipe, and ``strace``
output, journal files, and pipe traffic all read identically.

Durability policy is *fsync batching*: every append is written and
flushed to the OS immediately (a crashed **worker** loses nothing — the
journal lives in the facade's process), but ``os.fsync`` — the expensive
part — runs once every ``fsync_every`` appends and on :meth:`sync`.
A machine-level crash can therefore lose at most the last
``fsync_every`` frames; a process-level crash loses nothing.

Frame *indices are absolute* (counted from the journal's creation):
snapshots record the absolute index they cover, and compaction — which
drops covered frames — preserves the numbering by writing a control
frame ``{"kind": "compacted", "base": N}`` as the new first frame, so a
compacted log is self-describing and offline tools need no sidecar.

A killed writer can leave a *torn* final frame (partial header or
payload).  :func:`scan` tolerates it: the log is valid up to the last
complete frame, and opening a log for append truncates the torn tail so
the next frame starts clean — the standard WAL repair rule.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Mapping, Tuple

from ..errors import DurabilityError, WireError
from ..observability import STRUCTURED_LOG as _SLOG
from ..parallel.wire import read_frame, write_frame

#: Frame kind of the compaction control frame (never replayed).
CONTROL_COMPACTED = "compacted"


def scan(path: str) -> Tuple[int, int, bool]:
    """Scan a frame log file: ``(file_frames, valid_bytes, torn_tail)``.

    ``file_frames`` counts every complete frame physically present
    (including a leading control frame); ``valid_bytes`` is the offset
    just past the last complete frame; ``torn_tail`` is true when bytes
    beyond it exist but do not form a whole frame (a crash mid-append).
    """
    frames = 0
    valid = 0
    torn = False
    with open(path, "rb") as stream:
        while True:
            try:
                frame = read_frame(stream)
            except WireError:
                torn = True
                break
            if frame is None:
                break
            frames += 1
            valid = stream.tell()
        if not torn:
            # read_frame returns None both at a true EOF and when only a
            # partial header remains; compare against the file size to
            # tell them apart.
            torn = os.path.getsize(path) > valid
    return frames, valid, torn


def read_file_frames(path: str, skip: int = 0) -> List[Dict[str, Any]]:
    """Complete frames from file position *skip* on (torn tail ignored)."""
    frames: List[Dict[str, Any]] = []
    with open(path, "rb") as stream:
        index = 0
        while True:
            try:
                frame = read_frame(stream)
            except WireError:
                break
            if frame is None:
                break
            if index >= skip:
                frames.append(frame)
            index += 1
    return frames


def log_base(path: str) -> int:
    """The absolute index of the first payload frame in the file."""
    with open(path, "rb") as stream:
        try:
            first = read_frame(stream)
        except WireError:
            return 0
    if first is not None and first.get("kind") == CONTROL_COMPACTED:
        return int(first["base"])
    return 0


class FrameLog:
    """An append-only, fsync-batched log of wire frames."""

    def __init__(self, path: str, fsync_every: int = 16) -> None:
        if fsync_every < 0:
            raise DurabilityError("fsync_every must be >= 0 (0 = never)")
        self.path = path
        self.fsync_every = fsync_every
        self._unsynced = 0
        self.appended = 0
        self.bytes_written = 0
        #: Absolute index of the file's first payload frame (compaction
        #: shifts it forward; indices handed out stay stable).
        self.base = 0
        file_frames = 0
        if os.path.exists(path):
            file_frames, valid, torn = scan(path)
            if torn:
                # Torn tail from a previous crashed writer: truncate to
                # the last complete frame so appends start clean.
                with open(path, "r+b") as repair:
                    repair.truncate(valid)
                _SLOG.emit(
                    "durability",
                    "journal_tail_truncated",
                    level="warning",
                    path=path,
                    frames=file_frames,
                    valid_bytes=valid,
                )
            self.base = log_base(path)
            if self.base:
                file_frames -= 1  # the control frame is not a payload
        #: Absolute count of payload frames ever appended (next index).
        self.frame_count = self.base + file_frames
        self._stream = open(path, "ab")

    # -- writing -----------------------------------------------------------

    def append(self, frame: Mapping[str, Any]) -> int:
        """Durably append one frame; returns its absolute index."""
        before = self._stream.tell()
        write_frame(self._stream, frame)
        self.bytes_written += self._stream.tell() - before
        index = self.frame_count
        self.frame_count += 1
        self.appended += 1
        self._unsynced += 1
        if self.fsync_every and self._unsynced >= self.fsync_every:
            self.sync()
        return index

    def sync(self) -> None:
        """Force the batched fsync now."""
        if self._unsynced:
            self._stream.flush()
            os.fsync(self._stream.fileno())
            self._unsynced = 0

    # -- reading / maintenance --------------------------------------------

    def tail(self, start: int) -> List[Dict[str, Any]]:
        """Frames from absolute index *start* on (buffered appends included)."""
        if start < self.base:
            raise DurabilityError(
                f"frames before index {self.base} were compacted away; "
                f"cannot read from {start}"
            )
        self._stream.flush()
        skip = (start - self.base) + (1 if self.base else 0)
        return read_file_frames(self.path, skip)

    def compact(self, keep_from: int) -> int:
        """Drop frames below absolute index *keep_from* (atomic rewrite).

        Called after a snapshot: frames the snapshot already covers are
        dead weight for recovery.  Returns the surviving payload frame
        count.
        """
        if keep_from <= self.base:
            return self.frame_count - self.base
        if keep_from > self.frame_count:
            raise DurabilityError(
                f"cannot compact past the end of the log "
                f"({keep_from} > {self.frame_count} frames)"
            )
        self.sync()
        survivors = self.tail(keep_from)
        replacement = f"{self.path}.compact"
        with open(replacement, "wb") as stream:
            write_frame(
                stream, {"kind": CONTROL_COMPACTED, "base": keep_from}
            )
            for frame in survivors:
                write_frame(stream, frame)
            stream.flush()
            os.fsync(stream.fileno())
        self._stream.close()
        os.replace(replacement, self.path)
        self._stream = open(self.path, "ab")
        self.base = keep_from
        return len(survivors)

    def fileno(self) -> int:
        return self._stream.fileno()

    def close(self) -> None:
        if not self._stream.closed:
            self.sync()
            self._stream.close()

    def __enter__(self) -> "FrameLog":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
