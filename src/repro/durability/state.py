"""Snapshot codec for live operator state.

An operator's run-time state is its partition map (:class:`EventOperator`
replicates per process instance) plus its consumed/produced counters.
The partition values are whatever ``new_state()`` built — ``{"count": n}``
for Count, ``[bool]`` for Edge, slot→event maps for And, pointer/seen
dicts for Seq — so the codec must express arbitrary compositions of JSON
scalars, lists, tuples, frozensets, non-string-keyed mappings, and held
:class:`~repro.events.event.Event` objects (correlation operators keep
the constituent events of a pending composition).

The encoding extends the wire tags of :mod:`repro.parallel.wire` with two
more:

* ``{"$ev": <wire event>}`` — a held event, encoded with its provenance
  chain so a recovered correlation emits byte-identical provenance;
* ``{"$m": [[key, value], ...]}`` — a mapping whose keys are not plain
  strings (And partitions key slots by ``int``).

Anything else — an open file, a callable, an application object — raises
:class:`~repro.errors.SnapshotUnsupportedError`; the shard then reports
"no snapshot" and recovery falls back to full-journal replay, which is
always correct (the journal covers the shard's whole life until its
first compaction, and compaction only runs after a successful snapshot).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..awareness.operators.base import EventOperator
from ..errors import SnapshotUnsupportedError
from ..events.event import Event
from ..parallel.wire import event_from_wire, event_to_wire

_SCALARS = (str, int, float, bool)


def encode_state(value: Any) -> Any:
    """JSON-safe encoding of one piece of operator state."""
    if value is None or isinstance(value, _SCALARS):
        return value
    if isinstance(value, Event):
        return {"$ev": event_to_wire(value, provenance=True)}
    if isinstance(value, list):
        return [encode_state(member) for member in value]
    if isinstance(value, tuple):
        return {"$t": [encode_state(member) for member in value]}
    if isinstance(value, frozenset):
        members = sorted(
            (encode_state(member) for member in value), key=repr
        )
        return {"$fs": members}
    if isinstance(value, dict):
        if all(
            isinstance(key, str) and not key.startswith("$")
            for key in value
        ):
            return {key: encode_state(member) for key, member in value.items()}
        return {
            "$m": [
                [encode_state(key), encode_state(member)]
                for key, member in value.items()
            ]
        }
    raise SnapshotUnsupportedError(
        f"operator state {value!r} ({type(value).__name__}) is not "
        f"snapshot-encodable"
    )


def decode_state(value: Any) -> Any:
    """Inverse of :func:`encode_state`."""
    if isinstance(value, list):
        return [decode_state(member) for member in value]
    if isinstance(value, dict):
        if "$ev" in value:
            return event_from_wire(value["$ev"])
        if "$t" in value:
            return tuple(decode_state(member) for member in value["$t"])
        if "$fs" in value:
            return frozenset(decode_state(member) for member in value["$fs"])
        if "$m" in value:
            return {
                decode_state(key): decode_state(member)
                for key, member in value["$m"]
            }
        return {key: decode_state(member) for key, member in value.items()}
    return value


def capture_operator(operator: EventOperator) -> Dict[str, Any]:
    """One operator's recoverable state as a JSON-safe record."""
    return {
        "consumed": operator.consumed,
        "produced": operator.produced,
        "partitions": [
            [encode_state(key), encode_state(state)]
            for key, state in operator._partitions.items()
        ],
    }


def restore_operator(operator: EventOperator, record: Dict[str, Any]) -> None:
    """Load a :func:`capture_operator` record into a fresh operator."""
    operator.consumed = int(record["consumed"])
    operator.produced = int(record["produced"])
    partitions: Dict[Any, Any] = {}
    for key, state in record["partitions"]:
        partitions[decode_state(key)] = decode_state(state)
    operator._partitions = partitions


def capture_operators(
    operators: List[EventOperator],
) -> List[Dict[str, Any]]:
    """Capture an enumerated operator list, preserving order."""
    return [capture_operator(operator) for operator in operators]


def restore_operators(
    operators: List[EventOperator], records: List[Dict[str, Any]]
) -> None:
    if len(operators) != len(records):
        raise SnapshotUnsupportedError(
            f"snapshot holds {len(records)} operator states but the "
            f"rebuilt pipeline enumerates {len(operators)} operators — "
            f"the blueprint diverged from the snapshot"
        )
    for operator, record in zip(operators, records):
        restore_operator(operator, record)
