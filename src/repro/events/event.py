"""Self-contained events and event types (Section 5).

In AM, an event carries a set of name-value pairs called *event parameters*
that give detail about what occurred.  Events are **self-contained**: an
event's parameters completely describe the event — including its type, its
time, and its source.  This differs from active databases, where events may
reference state held elsewhere.  Because events are self-contained,
composite events *summarize* the parameters of their constituent events.

An :class:`EventType` is a named set of :class:`ParameterSpec` declarations.
Event-type conformance is what the typed event streams of awareness
descriptions check when wiring producers to operator slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..errors import EventError, EventTypeError

#: Parameter names every event must carry (self-containedness).
REQUIRED_PARAMETERS = ("type", "time", "source")


@dataclass(frozen=True)
class ParameterSpec:
    """Declaration of one event parameter.

    ``value_type`` is a coarse tag: ``"int"``, ``"str"``, ``"float"``,
    ``"bool"``, ``"set"``, or ``"any"``.  ``required`` parameters must be
    present (possibly ``None`` only when ``nullable``).
    """

    name: str
    value_type: str = "any"
    required: bool = True
    nullable: bool = True

    _SIMPLE: Tuple[Tuple[str, type], ...] = (
        ("int", int),
        ("str", str),
        ("float", float),
        ("bool", bool),
        ("set", frozenset),
    )

    def check(self, value: Any) -> None:
        if value is None:
            if not self.nullable:
                raise EventTypeError(
                    f"parameter {self.name!r} must not be null"
                )
            return
        if self.value_type == "any":
            return
        expected = dict(self._SIMPLE).get(self.value_type)
        if expected is None:
            raise EventTypeError(
                f"parameter {self.name!r} declares unknown type "
                f"{self.value_type!r}"
            )
        if expected is int and isinstance(value, bool):
            raise EventTypeError(
                f"parameter {self.name!r} expects int, got bool"
            )
        if not isinstance(value, expected):
            raise EventTypeError(
                f"parameter {self.name!r} expects {self.value_type}, got "
                f"{type(value).__name__} {value!r}"
            )


class EventType:
    """A named event type: a set of parameter declarations.

    ``EventType`` objects compare by *name* (two independently constructed
    descriptions of ``C_P`` for the same process schema are the same type),
    which is what stream type-checking uses.
    """

    def __init__(self, name: str, parameters: Iterable[ParameterSpec]) -> None:
        self.name = name
        self._parameters: Dict[str, ParameterSpec] = {}
        for spec in parameters:
            if spec.name in self._parameters:
                raise EventTypeError(
                    f"duplicate parameter {spec.name!r} in event type {name!r}"
                )
            self._parameters[spec.name] = spec
        for required in REQUIRED_PARAMETERS:
            if required not in self._parameters:
                raise EventTypeError(
                    f"event type {name!r} must declare the {required!r} "
                    f"parameter (events are self-contained)"
                )

    def parameters(self) -> Tuple[ParameterSpec, ...]:
        return tuple(self._parameters.values())

    def parameter_names(self) -> Tuple[str, ...]:
        return tuple(self._parameters)

    def has_parameter(self, name: str) -> bool:
        return name in self._parameters

    def conforms(self, params: Mapping[str, Any]) -> None:
        """Raise :class:`EventTypeError` unless *params* fit this type."""
        for spec in self._parameters.values():
            if spec.name not in params:
                if spec.required:
                    raise EventTypeError(
                        f"event of type {self.name!r} is missing required "
                        f"parameter {spec.name!r}"
                    )
                continue
            spec.check(params[spec.name])
        if params.get("type") != self.name:
            raise EventTypeError(
                f"event declares type {params.get('type')!r} but was checked "
                f"against {self.name!r}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventType):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventType({self.name!r}, {len(self._parameters)} params)"


def base_parameters() -> Tuple[ParameterSpec, ...]:
    """The three parameters every self-contained event type declares."""
    return (
        ParameterSpec("type", "str", nullable=False),
        ParameterSpec("time", "int", nullable=False),
        ParameterSpec("source", "str", nullable=False),
    )


class Event:
    """An immutable, self-contained event.

    Construction validates the parameters against the event type.  The
    parameter mapping is exposed read-only; ``event["time"]`` and
    ``event.get("intInfo")`` give dict-like access.

    ``provenance`` is the one instrumentation channel: while pipeline
    instrumentation is enabled (:mod:`repro.observability`) producers and
    operators stamp each event with the
    :class:`~repro.observability.provenance.ProvenanceNode` that explains
    where it came from.  The slot is always initialised to ``None`` (a
    plain attribute load is cheaper for the instrumented paths than a
    ``getattr`` default on an unset slot); the event's *parameters*
    remain immutable either way.
    """

    __slots__ = ("_event_type", "_params", "provenance")

    def __init__(self, event_type: EventType, params: Mapping[str, Any]) -> None:
        merged = dict(params)
        merged.setdefault("type", event_type.name)
        event_type.conforms(merged)
        self._event_type = event_type
        self._params = MappingProxyType(merged)
        self.provenance = None

    @classmethod
    def trusted(cls, event_type: EventType, params: Dict[str, Any]) -> "Event":
        """Construct without re-validating *params* against *event_type*.

        The dispatch-path fast constructor: the built-in producers and
        operators translate already-typed engine records into events, so
        checking every parameter spec again per event is pure overhead.
        Callers must guarantee conformance (including a correct ``type``
        parameter); events built from external input should use the
        validating constructor.
        """
        self = object.__new__(cls)
        params.setdefault("type", event_type.name)
        self._event_type = event_type
        self._params = MappingProxyType(params)
        self.provenance = None
        return self

    @property
    def event_type(self) -> EventType:
        return self._event_type

    @property
    def type_name(self) -> str:
        return self._event_type.name

    @property
    def time(self) -> int:
        return self._params["time"]

    @property
    def source(self) -> str:
        return self._params["source"]

    @property
    def params(self) -> Mapping[str, Any]:
        return self._params

    def __getitem__(self, name: str) -> Any:
        try:
            return self._params[name]
        except KeyError:
            raise EventError(
                f"event of type {self.type_name!r} has no parameter {name!r}"
            ) from None

    def get(self, name: str, default: Any = None) -> Any:
        return self._params.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def derive(self, event_type: Optional[EventType] = None, **overrides: Any) -> "Event":
        """A copy with some parameters replaced (composite-event helper)."""
        new_type = event_type or self._event_type
        merged = dict(self._params)
        merged.update(overrides)
        merged["type"] = new_type.name
        return Event(new_type, merged)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        interesting = {
            k: v
            for k, v in self._params.items()
            if k not in ("type",) and v is not None
        }
        return f"Event({self.type_name!r}, {interesting})"
