"""Event substrate (the CEDMOS role in Figure 5).

CMI's Awareness Engine is built on a general event processing system
(CEDMOS [3] in the prototype).  This package is our from-scratch
implementation of that substrate:

* self-contained events carrying name-value parameters
  (:mod:`repro.events.event`);
* the canonical event type ``C_P`` of Section 5.1.2
  (:mod:`repro.events.canonical`);
* a publish/subscribe bus with typed topics (:mod:`repro.events.bus`);
* the primitive event producers ``E_activity`` and ``E_context`` of
  Section 5.1.1 (:mod:`repro.events.producers`);
* application-specific external event sources such as the news service of
  Section 5.1.1 (:mod:`repro.events.external`);
* persistent per-participant delivery queues of Section 6.5
  (:mod:`repro.events.queues`).
"""

from .bus import EventBus, Subscription
from .canonical import (
    CANONICAL_PREFIX,
    canonical_event,
    canonical_type,
    canonical_type_name,
    is_canonical,
)
from .event import Event, EventType, ParameterSpec
from .external import ExternalEventSource, NewsServiceSource
from .producers import (
    ACTIVITY_EVENT_TYPE,
    CONTEXT_EVENT_TYPE,
    ActivityEventProducer,
    ContextEventProducer,
    EventProducer,
)
from .queues import (
    DeliveryQueue,
    MemoryDeliveryQueue,
    Notification,
    QueueRegistry,
    SqliteDeliveryQueue,
)

__all__ = [
    "ACTIVITY_EVENT_TYPE",
    "ActivityEventProducer",
    "CANONICAL_PREFIX",
    "CONTEXT_EVENT_TYPE",
    "ContextEventProducer",
    "DeliveryQueue",
    "Event",
    "EventBus",
    "EventProducer",
    "EventType",
    "ExternalEventSource",
    "MemoryDeliveryQueue",
    "NewsServiceSource",
    "Notification",
    "ParameterSpec",
    "QueueRegistry",
    "SqliteDeliveryQueue",
    "Subscription",
    "canonical_event",
    "canonical_type",
    "canonical_type_name",
    "is_canonical",
]
