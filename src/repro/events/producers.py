"""Primitive event producers (Section 5.1.1).

CMI currently implements two primitive event producers, both reproduced
here with the exact parameter lists of the paper:

* ``E_activity`` — an *activity state change event* each time a CMI
  activity changes state, with parameters time, activityInstanceId,
  parentProcessSchemaId, parentProcessInstanceId, user, activityVariableId,
  activityProcessSchemaId, oldState and newState;
* ``E_context`` — a *context field change event* each time a field in a
  context resource is modified, with parameters time, contextId, the set of
  ``(processSchemaId, processInstanceId)`` tuples of associated processes,
  fieldName, oldFieldValue and newFieldValue.

Producers translate the CORE engine's change records into self-contained
:class:`~repro.events.event.Event` objects and publish them on the bus.
They are the engine-side half of the *event source agents* of Section 6.3
(the agent wrapper lives in :mod:`repro.awareness.sources`).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.context import ContextChange
from ..core.instances import ActivityStateChange
from .bus import EventBus
from .event import Event, EventType, ParameterSpec, base_parameters

#: Type name of activity state change events (``T_activity``).
ACTIVITY_EVENT_TYPE_NAME = "T_activity"

#: Type name of context field change events (``T_context``).
CONTEXT_EVENT_TYPE_NAME = "T_context"

ACTIVITY_EVENT_TYPE = EventType(
    ACTIVITY_EVENT_TYPE_NAME,
    (
        *base_parameters(),
        ParameterSpec("activityInstanceId", "str", nullable=False),
        ParameterSpec("parentProcessSchemaId", "str"),
        ParameterSpec("parentProcessInstanceId", "str"),
        ParameterSpec("user", "str"),
        ParameterSpec("activityVariableId", "str"),
        ParameterSpec("activityProcessSchemaId", "str"),
        ParameterSpec("oldState", "str", nullable=False),
        ParameterSpec("newState", "str", nullable=False),
    ),
)

CONTEXT_EVENT_TYPE = EventType(
    CONTEXT_EVENT_TYPE_NAME,
    (
        *base_parameters(),
        ParameterSpec("contextId", "str", nullable=False),
        ParameterSpec("contextName", "str", nullable=False),
        # The {(processSchemaId, processInstanceId)} association set.
        ParameterSpec("processAssociations", "set", nullable=False),
        ParameterSpec("fieldName", "str", nullable=False),
        ParameterSpec("oldFieldValue", "any"),
        ParameterSpec("newFieldValue", "any"),
    ),
)


class EventProducer:
    """Base class: an identified producer of one event type.

    ``emit`` publishes to the bus (when attached) and also hands the event
    to directly-registered consumers, which is what awareness description
    leaves use when a detector runs without a bus (unit tests, benchmarks).
    """

    def __init__(self, producer_id: str, output_type: EventType) -> None:
        self.producer_id = producer_id
        self.output_type = output_type
        self._bus: Optional[EventBus] = None
        self._consumers: List[Callable[[Event], None]] = []
        self.emitted = 0

    def attach(self, bus: EventBus) -> None:
        self._bus = bus

    def add_consumer(self, consumer: Callable[[Event], None]) -> None:
        self._consumers.append(consumer)

    def emit(self, event: Event) -> Event:
        self.emitted += 1
        for consumer in list(self._consumers):
            consumer(event)
        if self._bus is not None:
            self._bus.publish(event)
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.producer_id!r})"


class ActivityEventProducer(EventProducer):
    """``E_activity`` — the single source of activity state change events."""

    def __init__(self, producer_id: str = "E_activity") -> None:
        super().__init__(producer_id, ACTIVITY_EVENT_TYPE)

    def produce(self, change: ActivityStateChange) -> Event:
        """Translate a CORE state-change record into a ``T_activity`` event."""
        event = Event(
            ACTIVITY_EVENT_TYPE,
            {
                "time": change.time,
                "source": self.producer_id,
                "activityInstanceId": change.activity_instance_id,
                "parentProcessSchemaId": change.parent_process_schema_id,
                "parentProcessInstanceId": change.parent_process_instance_id,
                "user": change.user,
                "activityVariableId": change.activity_variable_id,
                "activityProcessSchemaId": change.activity_process_schema_id,
                "oldState": change.old_state,
                "newState": change.new_state,
            },
        )
        return self.emit(event)


class ContextEventProducer(EventProducer):
    """``E_context`` — the single source of context field change events."""

    def __init__(self, producer_id: str = "E_context") -> None:
        super().__init__(producer_id, CONTEXT_EVENT_TYPE)

    def produce(self, change: ContextChange) -> Event:
        """Translate a context field change record into a ``T_context`` event."""
        event = Event(
            CONTEXT_EVENT_TYPE,
            {
                "time": change.time,
                "source": self.producer_id,
                "contextId": change.context_id,
                "contextName": change.context_name,
                "processAssociations": frozenset(change.associations),
                "fieldName": change.field_name,
                "oldFieldValue": change.old_value,
                "newFieldValue": change.new_value,
            },
        )
        return self.emit(event)
