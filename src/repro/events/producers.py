"""Primitive event producers (Section 5.1.1).

CMI currently implements two primitive event producers, both reproduced
here with the exact parameter lists of the paper:

* ``E_activity`` — an *activity state change event* each time a CMI
  activity changes state, with parameters time, activityInstanceId,
  parentProcessSchemaId, parentProcessInstanceId, user, activityVariableId,
  activityProcessSchemaId, oldState and newState;
* ``E_context`` — a *context field change event* each time a field in a
  context resource is modified, with parameters time, contextId, the set of
  ``(processSchemaId, processInstanceId)`` tuples of associated processes,
  fieldName, oldFieldValue and newFieldValue.

Producers translate the CORE engine's change records into self-contained
:class:`~repro.events.event.Event` objects and publish them on the bus.
They are the engine-side half of the *event source agents* of Section 6.3
(the agent wrapper lives in :mod:`repro.awareness.sources`).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from ..core.context import ContextChange
from ..core.instances import ActivityStateChange
from ..observability import INSTRUMENTATION as _OBS
from ..observability import MetricsRegistry
from .bus import EventBus
from .event import Event, EventType, ParameterSpec, base_parameters

#: Type name of activity state change events (``T_activity``).
ACTIVITY_EVENT_TYPE_NAME = "T_activity"

#: Type name of context field change events (``T_context``).
CONTEXT_EVENT_TYPE_NAME = "T_context"

#: Type name of system telemetry sample events (``T_system``).
SYSTEM_EVENT_TYPE_NAME = "T_system"

ACTIVITY_EVENT_TYPE = EventType(
    ACTIVITY_EVENT_TYPE_NAME,
    (
        *base_parameters(),
        ParameterSpec("activityInstanceId", "str", nullable=False),
        ParameterSpec("parentProcessSchemaId", "str"),
        ParameterSpec("parentProcessInstanceId", "str"),
        ParameterSpec("user", "str"),
        ParameterSpec("activityVariableId", "str"),
        ParameterSpec("activityProcessSchemaId", "str"),
        ParameterSpec("oldState", "str", nullable=False),
        ParameterSpec("newState", "str", nullable=False),
    ),
)

CONTEXT_EVENT_TYPE = EventType(
    CONTEXT_EVENT_TYPE_NAME,
    (
        *base_parameters(),
        ParameterSpec("contextId", "str", nullable=False),
        ParameterSpec("contextName", "str", nullable=False),
        # The {(processSchemaId, processInstanceId)} association set.
        ParameterSpec("processAssociations", "set", nullable=False),
        ParameterSpec("fieldName", "str", nullable=False),
        ParameterSpec("oldFieldValue", "any"),
        ParameterSpec("newFieldValue", "any"),
    ),
)

#: ``T_system`` — one telemetry sample of one metric series, published by
#: the system telemetry source agent when it reads the per-system
#: :class:`~repro.observability.registry.MetricsRegistry` on clock
#: advance.  ``metric`` names the sampled series (possibly a derived
#: ``rate[...]``/``stale[...]`` series), ``seriesLabel`` its label value
#: (``None`` for unlabelled / total series), and ``value`` the sampled
#: integer.  The events are self-contained like every primitive type:
#: SLO filters canonicalize them for the ordinary operator algebra.
SYSTEM_EVENT_TYPE = EventType(
    SYSTEM_EVENT_TYPE_NAME,
    (
        *base_parameters(),
        ParameterSpec("systemId", "str", nullable=False),
        ParameterSpec("metric", "str", nullable=False),
        ParameterSpec("seriesLabel", "str"),
        ParameterSpec("value", "int", nullable=False),
    ),
)


class EventProducer:
    """Base class: an identified producer of one event type.

    ``emit`` publishes to the bus (when attached) and also hands the event
    to directly-registered consumers, which is what awareness description
    leaves use when a detector runs without a bus (unit tests, benchmarks).

    **Indexed routing.**  Producers whose subclass installs a *routing key
    extractor* (``T_activity`` keys on ``(parentProcessSchemaId,
    activityVariableId)``, ``T_context`` on ``(contextName, fieldName)``)
    dispatch each event only to the consumers registered under the event's
    key plus the wildcard consumers, so per-event cost is O(matching
    consumers) instead of O(all consumers).  Consumers that cannot name
    static keys (dynamic predicates, monitors) register unkeyed and see
    everything, exactly as before.  Setting :attr:`indexed` to ``False``
    falls back to the linear scan over every consumer — the QE7 benchmark
    uses this to measure the index win.
    """

    def __init__(
        self,
        producer_id: str,
        output_type: EventType,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.producer_id = producer_id
        self.output_type = output_type
        self._bus: Optional[EventBus] = None
        #: (consumer, keys) registration records, in registration order.
        self._consumers: List[Tuple[Callable[[Event], None], Optional[Tuple[Hashable, ...]]]] = []
        self._wildcard: List[Callable[[Event], None]] = []
        self._index: Dict[Hashable, List[Callable[[Event], None]]] = {}
        #: Batch partners keyed by consumer (identity): a consumer with a
        #: partner receives each same-key run of an ``emit_batch`` as one
        #: partner call instead of per-event calls.
        self._batch_partners: Dict[
            Callable[[Event], None], Callable[[List[Event]], object]
        ] = {}
        self._key_extractor: Optional[Callable[[Event], Hashable]] = None
        #: Set False to force the linear scan over all consumers.
        self.indexed = True
        #: Emission totals live in the registry (the system registry when
        #: wired by a source agent, a private one otherwise); ``emitted``
        #: stays available as a read-only view.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._emitted = self.metrics.counter(
            "producer_emitted_total",
            "Primitive events emitted, by producer",
            ("producer",),
        ).child((producer_id,))
        #: Shared attribute dict for this producer's ``source.emit`` spans.
        self._span_attrs = {
            "producer": producer_id,
            "type": output_type.name,
        }

    @property
    def emitted(self) -> int:
        """Events emitted so far (a view over the registry counter)."""
        return int(self._emitted.value())

    def attach(self, bus: EventBus) -> None:
        self._bus = bus
        if self._key_extractor is not None:
            bus.set_key_extractor(self.output_type.name, self._key_extractor)

    def set_key_extractor(
        self, extractor: Callable[[Event], Hashable]
    ) -> None:
        """Install the routing key extractor for this producer's events."""
        self._key_extractor = extractor
        if self._bus is not None:
            self._bus.set_key_extractor(self.output_type.name, extractor)

    @property
    def key_extractor(self) -> Optional[Callable[[Event], Hashable]]:
        return self._key_extractor

    def add_consumer(
        self,
        consumer: Callable[[Event], None],
        keys: Optional[Iterable[Hashable]] = None,
        batch: Optional[Callable[[List[Event]], object]] = None,
    ) -> Callable[[Event], None]:
        """Register *consumer*; returns it as the removal handle.

        With ``keys`` the consumer is indexed under those routing keys and
        only sees events whose key matches; without, it joins the wildcard
        bucket and sees every event.  ``batch`` optionally registers a
        batch partner: during :meth:`emit_batch`, a run of consecutive
        same-key events is handed to the partner as one list instead of
        one *consumer* call per event (the plan cache registers shared
        filter chains this way so a burst traverses the chain once).
        """
        key_tuple = tuple(keys) if keys is not None else None
        self._consumers.append((consumer, key_tuple))
        if batch is not None:
            self._batch_partners[consumer] = batch
        if key_tuple is None:
            self._wildcard.append(consumer)
        else:
            for key in key_tuple:
                self._index.setdefault(key, []).append(consumer)
        return consumer

    def add_consumers(
        self,
        registrations: Iterable[
            Tuple[
                Callable[[Event], None],
                Optional[Iterable[Hashable]],
                Optional[Callable[[List[Event]], object]],
            ]
        ],
    ) -> List[Callable[[Event], None]]:
        """Register a batch of ``(consumer, keys, batch)`` records at once.

        The bulk half of :meth:`add_consumer`, used by the plan cache when
        a deploy attaches many operator leaves to one producer (shard
        startup fans a whole federation blueprint out this way).  Each
        index bucket is extended in registration order, so dispatch order
        is identical to a loop of single registrations; the returned
        handles line up with *registrations*.
        """
        index = self._index
        handles: List[Callable[[Event], None]] = []
        for consumer, keys, batch in registrations:
            key_tuple = tuple(keys) if keys is not None else None
            self._consumers.append((consumer, key_tuple))
            if batch is not None:
                self._batch_partners[consumer] = batch
            if key_tuple is None:
                self._wildcard.append(consumer)
            else:
                for key in key_tuple:
                    index.setdefault(key, []).append(consumer)
            handles.append(consumer)
        return handles

    def remove_consumer(self, consumer: Callable[[Event], None]) -> None:
        """Remove *consumer* from the wildcard bucket and the key index."""
        for record in list(self._consumers):
            if record[0] is consumer:
                self._consumers.remove(record)
        self._batch_partners.pop(consumer, None)
        if consumer in self._wildcard:
            self._wildcard.remove(consumer)
        for key in [k for k, bucket in self._index.items() if consumer in bucket]:
            bucket = [c for c in self._index[key] if c is not consumer]
            if bucket:
                self._index[key] = bucket
            else:
                del self._index[key]

    def consumer_count(self) -> int:
        return len(self._consumers)

    def indexed_key_count(self) -> int:
        """Distinct routing keys with at least one indexed consumer."""
        return len(self._index)

    def emit(self, event: Event) -> Event:
        self._emitted.inc()
        if _OBS.enabled:
            _OBS.provenance.record_primitive(event, self.producer_id)
            tracer = _OBS.tracer
            span = tracer.begin(
                "source.emit", event._params["time"], self._span_attrs
            )
            try:
                self._dispatch(event)
                if self._bus is not None:
                    self._bus.publish(event)
            finally:
                tracer.end(span)
            return event
        self._dispatch(event)
        if self._bus is not None:
            self._bus.publish(event)
        return event

    def emit_batch(self, events: List[Event]) -> List[Event]:
        """Emit several events, publishing to the bus as one batch."""
        self._emitted.inc(len(events))
        if _OBS.enabled:
            tracker = _OBS.provenance
            tracer = _OBS.tracer
            producer_id = self.producer_id
            attrs = self._span_attrs
            for event in events:
                tracker.record_primitive(event, producer_id)
                span = tracer.begin("source.emit", event._params["time"], attrs)
                try:
                    self._dispatch(event)
                finally:
                    tracer.end(span)
        else:
            self._dispatch_batch(events)
        if self._bus is not None:
            self._bus.publish_batch(events)
        return events

    def _dispatch_batch(self, events: List[Event]) -> None:
        """Dispatch an ``emit_batch``, amortizing over same-key runs.

        Consecutive events with the same routing key form a *run*; each
        run is handed to batch-capable consumers as one call and unrolled
        per event for everyone else.  Grouping only ever merges adjacent
        same-key events, so the order of events as seen by any single
        consumer is exactly the per-event dispatch order.  (The
        instrumented path in :meth:`emit_batch` stays per-event: spans
        and provenance stamps are per emission.)
        """
        partners = self._batch_partners
        if not partners:
            for event in events:
                self._dispatch(event)
            return
        if self.indexed and self._key_extractor is not None and self._index:
            extractor = self._key_extractor
            index = self._index
            wildcard = self._wildcard
            i, n = 0, len(events)
            while i < n:
                key = extractor(events[i])
                j = i + 1
                while j < n and extractor(events[j]) == key:
                    j += 1
                run = events[i:j]
                bucket = index.get(key)
                if bucket:
                    for consumer in tuple(bucket):
                        partner = partners.get(consumer)
                        if partner is not None:
                            partner(run)
                        else:
                            for event in run:
                                consumer(event)
                if wildcard:
                    for consumer in tuple(wildcard):
                        partner = partners.get(consumer)
                        if partner is not None:
                            partner(run)
                        else:
                            for event in run:
                                consumer(event)
                i = j
        else:
            for consumer, __ in tuple(self._consumers):
                partner = partners.get(consumer)
                if partner is not None:
                    partner(events)
                else:
                    for event in events:
                        consumer(event)

    def _dispatch(self, event: Event) -> None:
        if self.indexed and self._key_extractor is not None and self._index:
            bucket = self._index.get(self._key_extractor(event))
            if bucket:
                for consumer in tuple(bucket):
                    consumer(event)
            for consumer in tuple(self._wildcard):
                consumer(event)
        else:
            for consumer, __ in tuple(self._consumers):
                consumer(event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.producer_id!r})"


def activity_routing_key(event: Event) -> Hashable:
    """Routing key of a ``T_activity`` event: which activity variable of
    which process schema changed state."""
    params = event.params
    return (params["parentProcessSchemaId"], params["activityVariableId"])


def context_routing_key(event: Event) -> Hashable:
    """Routing key of a ``T_context`` event: which field of which named
    context changed."""
    params = event.params
    return (params["contextName"], params["fieldName"])


def system_routing_key(event: Event) -> Hashable:
    """Routing key of a ``T_system`` event: which metric series was
    sampled.  SLO filters key on the metric name alone (the series label
    is checked in the filter predicate), so one sampling pass dispatches
    each sample only to the rules that watch its metric."""
    return event.params["metric"]


class ActivityEventProducer(EventProducer):
    """``E_activity`` — the single source of activity state change events."""

    def __init__(
        self,
        producer_id: str = "E_activity",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(producer_id, ACTIVITY_EVENT_TYPE, metrics)
        self.set_key_extractor(activity_routing_key)

    def produce(self, change: ActivityStateChange) -> Event:
        """Translate a CORE state-change record into a ``T_activity`` event."""
        event = Event.trusted(
            ACTIVITY_EVENT_TYPE,
            {
                "time": change.time,
                "source": self.producer_id,
                "activityInstanceId": change.activity_instance_id,
                "parentProcessSchemaId": change.parent_process_schema_id,
                "parentProcessInstanceId": change.parent_process_instance_id,
                "user": change.user,
                "activityVariableId": change.activity_variable_id,
                "activityProcessSchemaId": change.activity_process_schema_id,
                "oldState": change.old_state,
                "newState": change.new_state,
            },
        )
        return self.emit(event)


class ContextEventProducer(EventProducer):
    """``E_context`` — the single source of context field change events."""

    def __init__(
        self,
        producer_id: str = "E_context",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(producer_id, CONTEXT_EVENT_TYPE, metrics)
        self.set_key_extractor(context_routing_key)

    def _translate(self, change: ContextChange) -> Event:
        return Event.trusted(
            CONTEXT_EVENT_TYPE,
            {
                "time": change.time,
                "source": self.producer_id,
                "contextId": change.context_id,
                "contextName": change.context_name,
                "processAssociations": frozenset(change.associations),
                "fieldName": change.field_name,
                "oldFieldValue": change.old_value,
                "newFieldValue": change.new_value,
            },
        )

    def produce(self, change: ContextChange) -> Event:
        """Translate a context field change record into a ``T_context`` event."""
        return self.emit(self._translate(change))

    def produce_batch(self, changes: Iterable[ContextChange]) -> List[Event]:
        """Translate a burst of field changes and emit them as one batch.

        The bus sees the whole batch in one :meth:`EventBus.publish_batch`
        call; direct consumers are dispatched per event as usual.
        """
        return self.emit_batch([self._translate(change) for change in changes])


class SystemEventProducer(EventProducer):
    """``E_system`` — the source of system telemetry sample events.

    The engine-side half of the system telemetry source agent
    (:class:`~repro.awareness.sources.SystemTelemetrySource`): the agent
    reads the metrics registry and hands each sample here to become a
    self-contained ``T_system`` event, batched per sampling pass.
    """

    def __init__(
        self,
        producer_id: str = "E_system",
        system_id: str = "cmi",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(producer_id, SYSTEM_EVENT_TYPE, metrics)
        self.system_id = system_id
        self.set_key_extractor(system_routing_key)

    def _translate(
        self, time: int, metric: str, label: Optional[str], value: int
    ) -> Event:
        return Event.trusted(
            SYSTEM_EVENT_TYPE,
            {
                "time": time,
                "source": self.producer_id,
                "systemId": self.system_id,
                "metric": metric,
                "seriesLabel": label,
                "value": value,
            },
        )

    def produce(
        self, time: int, metric: str, label: Optional[str], value: int
    ) -> Event:
        """Emit one telemetry sample as a ``T_system`` event."""
        return self.emit(self._translate(time, metric, label, value))

    def produce_batch(
        self,
        time: int,
        samples: Iterable[Tuple[str, Optional[str], int]],
    ) -> List[Event]:
        """Emit one sampling pass — ``(metric, label, value)`` triples —
        as a single bus batch."""
        return self.emit_batch(
            [
                self._translate(time, metric, label, value)
                for metric, label, value in samples
            ]
        )
