"""Application-specific external event sources (Section 5.1.1).

AM is open: it allows event sources from outside the process enactment
arena — "events related to information outside the modeled business process
or application-specific events from automated systems not directly modeled
in the business process".  For maximum synergism, external events are
related to the process via application-specific event operators.

The paper's example: a news service that has found an article for which a
task force has registered an interest (via an activity that creates a query
from user-supplied keywords).  The news event carries a *query id* that an
application-specific operator relates back to the process instance.

:class:`ExternalEventSource` is the generic producer for application-defined
external event types; :class:`NewsServiceSource` is the paper's concrete
example, used by the EX51 benchmark and the newsfeed example.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional

from ..errors import EventError
from .event import Event, EventType, ParameterSpec, base_parameters
from .producers import EventProducer

#: Type name of news-service events.
NEWS_EVENT_TYPE_NAME = "T_news"

NEWS_EVENT_TYPE = EventType(
    NEWS_EVENT_TYPE_NAME,
    (
        *base_parameters(),
        ParameterSpec("queryId", "str", nullable=False),
        ParameterSpec("headline", "str", nullable=False),
        ParameterSpec("articleUrl", "str", required=False),
        ParameterSpec("relevance", "float", required=False),
    ),
)


class ExternalEventSource(EventProducer):
    """A producer for an application-defined external event type.

    Applications declare their own event type (which must be
    self-contained, i.e. include ``type``/``time``/``source``) and push raw
    parameter mappings through :meth:`produce`.
    """

    def __init__(self, producer_id: str, event_type: EventType) -> None:
        super().__init__(producer_id, event_type)

    def produce(self, params: Mapping[str, Any]) -> Event:
        merged = dict(params)
        merged.setdefault("source", self.producer_id)
        if "time" not in merged:
            raise EventError(
                f"external event from {self.producer_id!r} must carry a time"
            )
        return self.emit(Event(self.output_type, merged))


class NewsServiceSource(ExternalEventSource):
    """The paper's news-service example source.

    Task forces register interest by creating queries; the service later
    publishes article events carrying the matching ``queryId``.
    """

    def __init__(self, producer_id: str = "E_news") -> None:
        super().__init__(producer_id, NEWS_EVENT_TYPE)
        self._queries: Dict[str, str] = {}
        self._next_query = 0

    def register_query(self, keywords: Iterable[str]) -> str:
        """Register interest; returns the query id the articles will carry."""
        self._next_query += 1
        query_id = f"query-{self._next_query}"
        self._queries[query_id] = " ".join(keywords)
        return query_id

    def keywords_for(self, query_id: str) -> str:
        try:
            return self._queries[query_id]
        except KeyError:
            raise EventError(f"unknown news query {query_id!r}") from None

    def publish_article(
        self,
        query_id: str,
        headline: str,
        time: int,
        article_url: Optional[str] = None,
        relevance: Optional[float] = None,
    ) -> Event:
        """Publish an article event matched to a registered query."""
        self.keywords_for(query_id)  # raises for unknown queries
        return self.produce(
            {
                "time": time,
                "queryId": query_id,
                "headline": headline,
                "articleUrl": article_url,
                "relevance": relevance,
            }
        )
