"""The canonical event type ``C_P`` (Section 5.1.2).

Nearly all AM operators take inputs and produce outputs of a canonical event
type associated with a process schema ``P``.  The canonical type carries:

* ``time`` — when the (composite) event occurred;
* ``processSchemaId`` and ``processInstanceId`` — which process instance the
  event belongs to (operators use ``processInstanceId`` to partition their
  internal state, Section 5.1.2 "process instance replication");
* generic information parameters whose meaning depends on the operator that
  generated the event: ``intInfo`` (a generic integer, e.g. a count, a
  deadline tick, or a copied context value), ``strInfo`` (a generic string),
  and ``description`` (human-readable digest text);
* ``sourceEvent`` — a digest of the triggering constituent event's
  parameters, preserving self-containedness when events are composed.

The canonical type is what makes operators freely composable and maximally
reusable: any operator output can feed any operator input slot typed
``C_P`` for the same process schema.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from .event import Event, EventType, ParameterSpec, base_parameters

#: Prefix of every canonical event type name.
CANONICAL_PREFIX = "C["


def canonical_type_name(process_schema_id: str) -> str:
    """The type name of ``C_P`` for process schema *process_schema_id*."""
    return f"{CANONICAL_PREFIX}{process_schema_id}]"


def is_canonical(type_name: str) -> bool:
    """True when *type_name* names a canonical type ``C_P`` for some P."""
    return type_name.startswith(CANONICAL_PREFIX) and type_name.endswith("]")


_TYPE_CACHE: dict = {}


def canonical_type(process_schema_id: str) -> EventType:
    """Return (and cache) the canonical event type for a process schema."""
    cached = _TYPE_CACHE.get(process_schema_id)
    if cached is not None:
        return cached
    event_type = EventType(
        canonical_type_name(process_schema_id),
        (
            *base_parameters(),
            ParameterSpec("processSchemaId", "str", nullable=False),
            ParameterSpec("processInstanceId", "str", nullable=False),
            ParameterSpec("intInfo", "int", required=False),
            ParameterSpec("strInfo", "str", required=False),
            ParameterSpec("description", "str", required=False),
            ParameterSpec("sourceEvent", "any", required=False),
        ),
    )
    _TYPE_CACHE[process_schema_id] = event_type
    return event_type


def canonical_event(
    process_schema_id: str,
    process_instance_id: str,
    time: int,
    source: str,
    int_info: Optional[int] = None,
    str_info: Optional[str] = None,
    description: Optional[str] = None,
    source_event: Optional[Mapping[str, Any]] = None,
    event_type: Optional[EventType] = None,
) -> Event:
    """Construct a canonical event for process schema *process_schema_id*.

    Hot-path callers (the filters) pass their cached ``C_P`` object as
    *event_type* to skip the type-cache lookup per produced event.  The
    parameters are assembled here from typed arguments, so the trusted
    (non-revalidating) event constructor is safe.
    """
    return Event.trusted(
        event_type if event_type is not None else canonical_type(process_schema_id),
        {
            "time": time,
            "source": source,
            "processSchemaId": process_schema_id,
            "processInstanceId": process_instance_id,
            "intInfo": int_info,
            "strInfo": str_info,
            "description": description,
            # No defensive copy: callers pass an Event's read-only params
            # mapping (or a dict they own), both safe to hold by reference.
            "sourceEvent": source_event,
        },
    )
