"""Persistent per-participant delivery queues (Section 6.5).

"The information from the event is then queued for each participant in the
set.  A persistent queue is necessary because a participant is not assumed
to be logged-on to the system when he receives an awareness event."

Two implementations share one interface:

* :class:`MemoryDeliveryQueue` — fast, used by unit tests and benchmarks;
* :class:`SqliteDeliveryQueue` — durable via the standard-library
  ``sqlite3`` module; a queue reopened on the same path sees all
  undelivered notifications, which is the paper's sign-on-later guarantee.

Awareness information is stored as :class:`Notification` records: the
digested composite-event parameters plus the user-friendly description the
output operator attached (Section 6.2).
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import QueueError


@dataclass(frozen=True)
class Notification:
    """One piece of awareness information queued for one participant."""

    notification_id: str
    participant_id: str
    time: int
    description: str
    schema_name: str
    parameters: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "notification_id": self.notification_id,
                "participant_id": self.participant_id,
                "time": self.time,
                "description": self.description,
                "schema_name": self.schema_name,
                "parameters": _jsonable(self.parameters),
            },
            sort_keys=True,
        )

    @staticmethod
    def from_json(payload: str) -> "Notification":
        data = json.loads(payload)
        return Notification(
            notification_id=data["notification_id"],
            participant_id=data["participant_id"],
            time=data["time"],
            description=data["description"],
            schema_name=data["schema_name"],
            parameters=data["parameters"],
        )


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of event parameters to JSON-safe values."""
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (frozenset, set)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class DeliveryQueue:
    """Interface of a per-participant notification queue.

    Queues are context managers: ``with SqliteDeliveryQueue(path) as q:``
    guarantees :meth:`close` on exit, which matters for the durable
    backend (the memory queue's close is a no-op).
    """

    def enqueue(self, notification: Notification) -> None:
        raise NotImplementedError

    def pending(self, participant_id: str) -> Tuple[Notification, ...]:
        """Notifications queued for a participant, oldest first."""
        raise NotImplementedError

    def retrieve(self, participant_id: str) -> Tuple[Notification, ...]:
        """Return and remove all pending notifications for a participant."""
        raise NotImplementedError

    def pending_count(self, participant_id: Optional[str] = None) -> int:
        raise NotImplementedError

    def pending_by_participant(self) -> Dict[str, int]:
        """Pending notification counts keyed by participant id.

        The telemetry sampler's view: one call yields every queue's depth
        (participants with nothing pending are omitted).
        """
        raise NotImplementedError

    def oldest_pending_time(self) -> Optional[int]:
        """Logical time of the oldest pending notification (None if empty).

        Enqueue order follows the logical clock (the delivery agent is
        the single writer), so this is the enqueue tick of the longest-
        waiting notification — the basis of the delivery-lag gauge.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (no-op for the memory queue)."""

    def __enter__(self) -> "DeliveryQueue":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


class MemoryDeliveryQueue(DeliveryQueue):
    """In-memory queue; contents do not survive the process."""

    def __init__(self) -> None:
        self._queues: Dict[str, List[Notification]] = {}

    def enqueue(self, notification: Notification) -> None:
        self._queues.setdefault(notification.participant_id, []).append(
            notification
        )

    def pending(self, participant_id: str) -> Tuple[Notification, ...]:
        return tuple(self._queues.get(participant_id, ()))

    def retrieve(self, participant_id: str) -> Tuple[Notification, ...]:
        items = tuple(self._queues.pop(participant_id, ()))
        return items

    def pending_count(self, participant_id: Optional[str] = None) -> int:
        if participant_id is not None:
            return len(self._queues.get(participant_id, ()))
        return sum(len(q) for q in self._queues.values())

    def pending_by_participant(self) -> Dict[str, int]:
        return {pid: len(q) for pid, q in self._queues.items() if q}

    def oldest_pending_time(self) -> Optional[int]:
        times = [q[0].time for q in self._queues.values() if q]
        return min(times) if times else None


class SqliteDeliveryQueue(DeliveryQueue):
    """Durable queue backed by SQLite.

    Notifications survive :meth:`close` and reopening the same path; the
    WAL-less default journal is sufficient for the single-writer pattern of
    the delivery agent.  ``":memory:"`` gives a private non-durable queue
    with identical semantics (useful in tests).
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.execute(
            """
            CREATE TABLE IF NOT EXISTS notifications (
                seq INTEGER PRIMARY KEY AUTOINCREMENT,
                participant_id TEXT NOT NULL,
                payload TEXT NOT NULL
            )
            """
        )
        self._conn.execute(
            """
            CREATE INDEX IF NOT EXISTS idx_notifications_participant
            ON notifications (participant_id, seq)
            """
        )
        self._conn.commit()

    def enqueue(self, notification: Notification) -> None:
        self._check_open()
        self._conn.execute(
            "INSERT INTO notifications (participant_id, payload) VALUES (?, ?)",
            (notification.participant_id, notification.to_json()),
        )
        self._conn.commit()

    def pending(self, participant_id: str) -> Tuple[Notification, ...]:
        self._check_open()
        rows = self._conn.execute(
            "SELECT payload FROM notifications WHERE participant_id = ? "
            "ORDER BY seq",
            (participant_id,),
        ).fetchall()
        return tuple(Notification.from_json(row[0]) for row in rows)

    def retrieve(self, participant_id: str) -> Tuple[Notification, ...]:
        self._check_open()
        items = self.pending(participant_id)
        self._conn.execute(
            "DELETE FROM notifications WHERE participant_id = ?",
            (participant_id,),
        )
        self._conn.commit()
        return items

    def pending_count(self, participant_id: Optional[str] = None) -> int:
        self._check_open()
        if participant_id is not None:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM notifications WHERE participant_id = ?",
                (participant_id,),
            ).fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM notifications"
            ).fetchone()
        return int(row[0])

    def pending_by_participant(self) -> Dict[str, int]:
        self._check_open()
        rows = self._conn.execute(
            "SELECT participant_id, COUNT(*) FROM notifications "
            "GROUP BY participant_id"
        ).fetchall()
        return {row[0]: int(row[1]) for row in rows}

    def oldest_pending_time(self) -> Optional[int]:
        # Enqueue ticks are monotonic with seq (single writer over one
        # logical clock), so the lowest seq is the oldest notification.
        self._check_open()
        row = self._conn.execute(
            "SELECT payload FROM notifications ORDER BY seq LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        return Notification.from_json(row[0]).time

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None  # type: ignore[assignment]

    def _check_open(self) -> None:
        if self._conn is None:
            raise QueueError(f"queue at {self.path!r} is closed")


class QueueRegistry:
    """Hands out the queue shared by the delivery agent and the viewers.

    A single queue object stores all participants' notifications
    (partitioned by participant id); the registry simply owns its
    lifecycle and lets the federation choose memory or SQLite backing.
    """

    def __init__(self, queue: Optional[DeliveryQueue] = None) -> None:
        self.queue = queue if queue is not None else MemoryDeliveryQueue()

    def close(self) -> None:
        self.queue.close()
