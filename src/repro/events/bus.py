"""Publish/subscribe event bus with predicate-indexed routing.

The CMI Enactment System is "a collection of communicating agents acting as
a single server" (Section 6.1).  The bus is the communication fabric between
those agents: event source agents publish primitive events, detector agents
subscribe to the primitive types they consume, and the delivery agent
subscribes to the output-operator event type.

Topics are event type names.  Dispatch is synchronous but *queued*: an event
published while another event is being dispatched is appended to a FIFO and
delivered after the current dispatch completes, so cascades triggered by
handlers (e.g. a detector reacting to an event by modifying a context, which
publishes another event) see a consistent, non-reentrant order.

**Indexed routing.**  A topic may register a *routing key extractor*
(:meth:`EventBus.set_key_extractor`) that maps each event to a hashable
routing key — e.g. ``T_context`` keys on ``(contextName, fieldName)``.
Subscribers that know the static keys they can match pass them to
:meth:`EventBus.subscribe`; dispatch then only visits the subscribers in the
event's key bucket plus the *wildcard bucket* of unkeyed subscribers, making
per-event cost O(matching subscribers) instead of O(all subscribers).
Unkeyed topics and unkeyed subscribers behave exactly as before.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..observability import INSTRUMENTATION as _OBS
from ..observability import MetricsRegistry
from ..observability import STRUCTURED_LOG as _SLOG
from .event import Event

Handler = Callable[[Event], None]
KeyExtractor = Callable[[Event], Hashable]


@dataclass
class Subscription:
    """A handle returned by :meth:`EventBus.subscribe`; use to unsubscribe.

    ``keys`` is the tuple of routing keys the subscription is indexed
    under, or ``None`` for a wildcard subscription that sees every event
    of its topic.
    """

    topic: str
    handler: Handler
    keys: Optional[Tuple[Hashable, ...]] = None
    active: bool = True


class _Topic:
    """Per-topic subscription state: wildcard bucket + routing index.

    ``wildcard`` holds unkeyed subscriptions (dispatch visits all of
    them); ``index`` maps each routing key to the keyed subscriptions
    registered under it.  Dispatch iterates cached tuple snapshots so the
    hot path never copies a list; snapshots are rebuilt lazily after a
    subscribe/unsubscribe invalidates them.
    """

    __slots__ = ("wildcard", "index", "extractor", "_wildcard_snap", "_index_snap", "_needs_reap")

    def __init__(self) -> None:
        self.wildcard: List[Subscription] = []
        self.index: Dict[Hashable, List[Subscription]] = {}
        self.extractor: Optional[KeyExtractor] = None
        self._wildcard_snap: Optional[Tuple[Subscription, ...]] = None
        self._index_snap: Dict[Hashable, Tuple[Subscription, ...]] = {}
        self._needs_reap = False

    # -- mutation ---------------------------------------------------------

    def add(self, subscription: Subscription) -> None:
        if subscription.keys is None:
            self.wildcard.append(subscription)
            self._wildcard_snap = None
        else:
            for key in subscription.keys:
                self.index.setdefault(key, []).append(subscription)
                self._index_snap.pop(key, None)

    def discard(self, subscription: Subscription) -> None:
        if subscription.keys is None:
            if subscription in self.wildcard:
                self.wildcard.remove(subscription)
            self._wildcard_snap = None
        else:
            for key in subscription.keys:
                bucket = self.index.get(key)
                if bucket and subscription in bucket:
                    bucket.remove(subscription)
                    if not bucket:
                        del self.index[key]
                self._index_snap.pop(key, None)

    def reap(self) -> None:
        """Drop inactive subscriptions left by unsubscribe-during-dispatch."""
        if any(not s.active for s in self.wildcard):
            self.wildcard = [s for s in self.wildcard if s.active]
            self._wildcard_snap = None
        for key in [k for k, bucket in self.index.items() if any(not s.active for s in bucket)]:
            bucket = [s for s in self.index[key] if s.active]
            if bucket:
                self.index[key] = bucket
            else:
                del self.index[key]
            self._index_snap.pop(key, None)
        self._needs_reap = False

    def mark_dirty(self) -> None:
        self._needs_reap = True

    # -- dispatch-side views ----------------------------------------------

    def wildcard_snapshot(self) -> Tuple[Subscription, ...]:
        snap = self._wildcard_snap
        if snap is None:
            snap = self._wildcard_snap = tuple(self.wildcard)
        return snap

    def bucket_snapshot(self, key: Hashable) -> Tuple[Subscription, ...]:
        snap = self._index_snap.get(key)
        if snap is None:
            bucket = self.index.get(key)
            if not bucket:
                return ()
            snap = self._index_snap[key] = tuple(bucket)
        return snap

    def all_subscriptions(self) -> List[Subscription]:
        seen: List[Subscription] = list(self.wildcard)
        for bucket in self.index.values():
            for subscription in bucket:
                if subscription not in seen:
                    seen.append(subscription)
        return seen


class EventBus:
    """Synchronous, queue-draining pub/sub bus with per-topic statistics.

    With ``isolate_errors=True`` a failing handler no longer aborts the
    dispatch: the exception is recorded in :attr:`handler_errors` (and the
    per-topic ``failed`` counter), and the remaining subscribers still
    receive the event.  The default is fail-fast, which is what unit tests
    want; a long-running federation turns isolation on so one broken
    detector cannot silence the rest of the awareness engine.
    """

    def __init__(
        self,
        isolate_errors: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._topics: Dict[str, _Topic] = {}
        self._queue: Deque[Event] = deque()
        self._dispatching = False
        #: Per-topic counters live in the metrics registry (the system's
        #: registry when the bus belongs to an EnactmentSystem, a private
        #: one otherwise) so `stats()` surfaces are views over instruments.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._published = self.metrics.counter(
            "bus_published_total",
            "Events published on the bus, by topic",
            ("topic",),
        )
        self._delivered = self.metrics.counter(
            "bus_delivered_total",
            "Successful handler deliveries, by topic",
            ("topic",),
        )
        self._failed = self.metrics.counter(
            "bus_failed_total",
            "Handler deliveries that raised under error isolation, by topic",
            ("topic",),
        )
        self._isolate_errors = isolate_errors
        #: (topic, exception) pairs collected under error isolation.
        self.handler_errors: List[Tuple[str, Exception]] = []
        #: Shared per-topic attribute dicts for ``bus.dispatch`` spans.
        self._span_attrs: Dict[str, Dict[str, object]] = {}

    # -- subscription ----------------------------------------------------------

    def set_key_extractor(self, topic: str, extractor: KeyExtractor) -> None:
        """Register the routing key extractor for *topic*.

        Idempotent for the same extractor; re-registering a different one
        is allowed (last wins) but existing keyed subscriptions keep the
        keys they registered under, so callers should install extractors
        before keyed subscribers appear.
        """
        self._topics.setdefault(topic, _Topic()).extractor = extractor

    def key_extractor(self, topic: str) -> Optional[KeyExtractor]:
        entry = self._topics.get(topic)
        return entry.extractor if entry is not None else None

    def subscribe(
        self,
        topic: str,
        handler: Handler,
        keys: Optional[Iterable[Hashable]] = None,
    ) -> Subscription:
        """Register *handler* for events whose type name equals *topic*.

        With ``keys`` the subscription is indexed: the handler only sees
        events whose routing key (per the topic's key extractor) is one of
        *keys*.  Without ``keys`` the handler joins the wildcard bucket
        and sees every event of the topic — the pre-index behavior.
        """
        subscription = Subscription(
            topic=topic,
            handler=handler,
            keys=tuple(keys) if keys is not None else None,
        )
        self._topics.setdefault(topic, _Topic()).add(subscription)
        return subscription

    def subscribe_many(
        self,
        topic: str,
        registrations: Iterable[
            Tuple[Handler, Optional[Iterable[Hashable]]]
        ],
    ) -> List[Subscription]:
        """Register a batch of ``(handler, keys)`` pairs on one topic.

        Spec fan-out at shard startup registers hundreds of keyed
        subscribers in one burst; per-call :meth:`subscribe` pays a topic
        lookup and a snapshot invalidation for every registration.  This
        path resolves the topic once, extends each key bucket once, and
        invalidates each touched snapshot once, so a cold start is
        O(subscribers + touched keys).  Registration order — the order
        dispatch visits equal-key subscribers — is exactly the order of
        *registrations*, as if :meth:`subscribe` had been called in a
        loop.
        """
        entry = self._topics.setdefault(topic, _Topic())
        index = entry.index
        out: List[Subscription] = []
        touched_keys = set()
        touched_wildcard = False
        for handler, keys in registrations:
            subscription = Subscription(
                topic=topic,
                handler=handler,
                keys=tuple(keys) if keys is not None else None,
            )
            if subscription.keys is None:
                entry.wildcard.append(subscription)
                touched_wildcard = True
            else:
                for key in subscription.keys:
                    index.setdefault(key, []).append(subscription)
                    touched_keys.add(key)
            out.append(subscription)
        if touched_wildcard:
            entry._wildcard_snap = None
        for key in touched_keys:
            entry._index_snap.pop(key, None)
        return out

    def unsubscribe(self, subscription: Subscription) -> None:
        """Deactivate and remove *subscription*.

        Safe to call from inside a handler: the in-flight dispatch checks
        the ``active`` flag, and the list entry is reaped lazily on the
        next dispatch of the topic (removing it immediately could race
        with the dispatch snapshot).
        """
        subscription.active = False
        entry = self._topics.get(subscription.topic)
        if entry is None:
            return
        if self._dispatching:
            entry.mark_dirty()
        else:
            entry.discard(subscription)

    def subscriber_count(self, topic: str) -> int:
        entry = self._topics.get(topic)
        if entry is None:
            return 0
        return sum(1 for s in entry.all_subscriptions() if s.active)

    # -- publication -------------------------------------------------------------

    def publish(self, event: Event) -> None:
        """Enqueue *event* and drain the queue unless a drain is running."""
        self._queue.append(event)
        if self._dispatching:
            return
        self._drain()

    def publish_batch(self, events: Iterable[Event]) -> None:
        """Enqueue several events and drain once.

        Used by the event source agents for bulk updates (e.g. a context
        source agent forwarding a burst of field changes): the whole batch
        joins the FIFO before dispatch starts, and a single drain loop
        delivers it — same ordering guarantees as repeated :meth:`publish`
        with less per-event overhead.
        """
        self._queue.extend(events)
        if self._dispatching:
            return
        self._drain()

    def _drain(self) -> None:
        self._dispatching = True
        queue = self._queue
        try:
            while queue:
                # Batch hand-off: a run of consecutive same-topic events
                # (the common shape after publish_batch) shares one topic
                # resolution and one counter update.  Handlers still see
                # one call per event in FIFO order.
                event = queue.popleft()
                topic = event.type_name
                run: Optional[List[Event]] = None
                while queue and queue[0].type_name == topic:
                    if run is None:
                        run = [event]
                    run.append(queue.popleft())
                entry = self._topics.get(topic)
                if run is None:
                    self._published.inc(1, (topic,))
                    if entry is not None:
                        self._dispatch(entry, topic, event)
                else:
                    self._published.inc(len(run), (topic,))
                    if entry is not None:
                        for event in run:
                            self._dispatch(entry, topic, event)
        finally:
            self._dispatching = False

    def _dispatch(self, entry: _Topic, topic: str, event: Event) -> None:
        if _OBS.enabled:
            tracer = _OBS.tracer
            if tracer._light_depth:
                # Sampler skipped this trace: depth bookkeeping in place
                # (see Tracer._light_depth) instead of two method calls.
                tracer._light_depth += 1
                span = None
            else:
                attrs = self._span_attrs.get(topic)
                if attrs is None:
                    attrs = self._span_attrs[topic] = {"topic": topic}
                span = tracer.begin(
                    "bus.dispatch", event._params["time"], attrs
                )
            try:
                self._dispatch_entry(entry, topic, event)
            finally:
                if span is None:
                    tracer._light_depth -= 1
                else:
                    tracer.end(span)
        else:
            self._dispatch_entry(entry, topic, event)

    def _dispatch_entry(self, entry: _Topic, topic: str, event: Event) -> None:
        if entry._needs_reap:
            entry.reap()
        if entry.extractor is not None and entry.index:
            key = entry.extractor(event)
            keyed = entry.bucket_snapshot(key)
            if keyed:
                self._deliver(topic, keyed, event)
        wildcard = entry.wildcard_snapshot()
        if wildcard:
            self._deliver(topic, wildcard, event)

    def _deliver(
        self, topic: str, subscriptions: Tuple[Subscription, ...], event: Event
    ) -> None:
        for subscription in subscriptions:
            if not subscription.active:
                continue
            try:
                subscription.handler(event)
            except Exception as error:
                if not self._isolate_errors:
                    raise
                self._failed.inc(1, (topic,))
                self.handler_errors.append((topic, error))
                if _SLOG.enabled:
                    _SLOG.emit(
                        "bus",
                        "handler_error",
                        level="error",
                        tick=event.time,
                        topic=topic,
                        error=repr(error),
                    )
                continue
            self._delivered.inc(1, (topic,))

    # -- statistics ------------------------------------------------------------------

    def published_count(self, topic: Optional[str] = None) -> int:
        if topic is None:
            return int(self._published.total())
        return int(self._published.value((topic,)))

    def delivered_count(self, topic: Optional[str] = None) -> int:
        if topic is None:
            return int(self._delivered.total())
        return int(self._delivered.value((topic,)))

    def failed_count(self, topic: Optional[str] = None) -> int:
        """Deliveries that raised under ``isolate_errors=True``."""
        if topic is None:
            return int(self._failed.total())
        return int(self._failed.value((topic,)))

    def topics(self) -> Tuple[str, ...]:
        return tuple(self._topics)
