"""Publish/subscribe event bus.

The CMI Enactment System is "a collection of communicating agents acting as
a single server" (Section 6.1).  The bus is the communication fabric between
those agents: event source agents publish primitive events, detector agents
subscribe to the primitive types they consume, and the delivery agent
subscribes to the output-operator event type.

Topics are event type names.  Dispatch is synchronous but *queued*: an event
published while another event is being dispatched is appended to a FIFO and
delivered after the current dispatch completes, so cascades triggered by
handlers (e.g. a detector reacting to an event by modifying a context, which
publishes another event) see a consistent, non-reentrant order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .event import Event

Handler = Callable[[Event], None]


@dataclass
class Subscription:
    """A handle returned by :meth:`EventBus.subscribe`; use to unsubscribe."""

    topic: str
    handler: Handler
    active: bool = True


class EventBus:
    """Synchronous, queue-draining pub/sub bus with per-topic statistics.

    With ``isolate_errors=True`` a failing handler no longer aborts the
    dispatch: the exception is recorded in :attr:`handler_errors` and the
    remaining subscribers still receive the event.  The default is
    fail-fast, which is what unit tests want; a long-running federation
    turns isolation on so one broken detector cannot silence the rest of
    the awareness engine.
    """

    def __init__(self, isolate_errors: bool = False) -> None:
        self._subscriptions: Dict[str, List[Subscription]] = {}
        self._queue: Deque[Event] = deque()
        self._dispatching = False
        self._published: Dict[str, int] = {}
        self._delivered: Dict[str, int] = {}
        self._isolate_errors = isolate_errors
        #: (topic, exception) pairs collected under error isolation.
        self.handler_errors: List[Tuple[str, Exception]] = []

    # -- subscription ----------------------------------------------------------

    def subscribe(self, topic: str, handler: Handler) -> Subscription:
        """Register *handler* for events whose type name equals *topic*."""
        subscription = Subscription(topic=topic, handler=handler)
        self._subscriptions.setdefault(topic, []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        subscription.active = False
        handlers = self._subscriptions.get(subscription.topic)
        if handlers and subscription in handlers:
            handlers.remove(subscription)

    def subscriber_count(self, topic: str) -> int:
        return len(self._subscriptions.get(topic, ()))

    # -- publication -------------------------------------------------------------

    def publish(self, event: Event) -> None:
        """Enqueue *event* and drain the queue unless a drain is running."""
        self._queue.append(event)
        if self._dispatching:
            return
        self._dispatching = True
        try:
            while self._queue:
                self._dispatch(self._queue.popleft())
        finally:
            self._dispatching = False

    def _dispatch(self, event: Event) -> None:
        topic = event.type_name
        self._published[topic] = self._published.get(topic, 0) + 1
        # Copy: handlers may subscribe/unsubscribe during dispatch.
        for subscription in list(self._subscriptions.get(topic, ())):
            if not subscription.active:
                continue
            try:
                subscription.handler(event)
            except Exception as error:
                if not self._isolate_errors:
                    raise
                self.handler_errors.append((topic, error))
                continue
            self._delivered[topic] = self._delivered.get(topic, 0) + 1

    # -- statistics ------------------------------------------------------------------

    def published_count(self, topic: Optional[str] = None) -> int:
        if topic is None:
            return sum(self._published.values())
        return self._published.get(topic, 0)

    def delivered_count(self, topic: Optional[str] = None) -> int:
        if topic is None:
            return sum(self._delivered.values())
        return self._delivered.get(topic, 0)

    def topics(self) -> Tuple[str, ...]:
        return tuple(self._subscriptions)
